// bqs-sim drives the replicated shared-variable protocol of [MR98a] over a
// chosen b-masking quorum system with injected crash and Byzantine faults.
// It is a throughput harness: any number of concurrent clients issue mixed
// reads and writes, every probe feeds the cluster's live load profile, and
// the run ends by comparing the measured busiest-server frequency against
// the paper's L(Q) lower bounds (Theorem 4.1).
//
// Usage:
//
//	bqs-sim [-system threshold|grid|mgrid|rt|boostfpp|mpath|wheel] [-b 3]
//	        [-strategy uniform|optimal] [-byzantine 3] [-crashed 2]
//	        [-clients 8] [-ops 100] [-duration 0] [-drop 0] [-latency 0]
//	        [-jitter 0] [-timeout 0] [-deterministic] [-seed 1]
//	        [-keys 0] [-key-dist uniform|zipf:S] [-batch 1]
//	        [-fault-schedule SPEC] [-churn SPEC] [-suspicion-ttl 0]
//	        [-availability SPEC] [-p-vector SPEC] [-domains SPEC]
//	        [-adversary SPEC] [-reconfig SPEC] [-data-dir DIR] [-fsync=true]
//	        [-bench-json out.json]
//
// With -duration the run is time-bounded instead of op-bounded. With
// -strategy optimal, quorum selection samples the LP-optimal access
// strategy of Definition 3.8 (solved at startup), so the measured load
// converges to L(Q) itself; the run fails if a fault-free measurement
// lands more than 10% from the LP value. The workload and report come
// from internal/harness, shared with cmd/bqs-client, so in-memory and TCP
// clusters are measured comparably.
//
// The keyed data plane: -keys N spreads operations over an N-key object
// space with popularity -key-dist (uniform, or zipf:S for rank-S^-s skew
// — load is per quorum access and key-oblivious, so the LP convergence
// check stays armed at any skew), and -batch M drives each client
// through a Session with M operations in flight, whose probes coalesce
// into batched transport frames.
//
// Dynamic faults (the churn engine): -fault-schedule replays a
// deterministic timeline ("100ms:3:crashed,600ms:3:correct") and -churn
// generates a seeded stochastic one ("mtbf=300ms,mttr=100ms", requires
// -duration) — both flip server behaviors WHILE the workload runs, so
// recovery, flapping and cascades are exercised live; -suspicion-ttl
// controls how fast clients re-admit recovered servers (0 = auto: 50ms
// whenever churn is active). A schedule that never leaves Correct keeps
// the fault-free LP convergence check armed — churn instrumentation must
// not perturb the measurement.
//
// Live reconfiguration: -reconfig replays a resize schedule
// ("at=5s:mgrid:36,at=20s:compose:6x6") WHILE the workload runs — each
// step drains the current epoch, cuts the cluster over to the target
// quorum system at the next epoch (keeping -b) and hands the keyed
// state to the new universe, printing the epoch-cutover line the CI
// smoke greps. An aborted resize (drain exceeding the bound) fails the
// run. The report then holds the measurement against the FINAL system's
// bounds, and the -strategy optimal convergence check pins the
// post-resize load to the new system's LP: the current-epoch load
// profile resets at cutover.
//
// Durable state: -data-dir DIR backs every server with the WAL+snapshot
// store (one engine per server under DIR/server-NNNN), so writes are
// persisted before they are acknowledged and churn behaviors like
// "recover=restart" exercise true crash-recovery; -fsync=false trades
// tail durability for throughput. -bench-json PATH writes the run's
// machine-readable benchmark snapshot (ops/s, p50/p99 latency, measured
// load, store engine) for the CI bench trajectory.
//
// -availability replaces the workload with the Definition 3.10
// experiment: many seeded epochs each crash servers i.i.d. with
// probability p and run the protocol; the empirical system-crash rate is
// compared against CrashProbabilityExact (universes ≤ 24), the Monte
// Carlo estimate and the Propositions 4.3–4.5 lower bounds, and the run
// exits non-zero when the measurement lands more than 3 binomial standard
// deviations from the exact value.
//
// Heterogeneous and adversarial failure regimes: -p-vector replaces the
// scalar p with per-server crash probabilities ("0.01" uniform,
// "0.1,0.2,..." positional, "*:0.01,0-3:0.2" ranged) and -domains adds
// correlated failure domains ("0-3:0.05,8+12:0.2" — each fires as one
// Bernoulli taking all members down together); the empirical rate is then
// held against the generalized exact/Monte-Carlo F under that model.
// -adversary replaces stochastic draws with adversarial placement:
// "random,b=N" crashes a uniform N-subset (still enumerable, so the 3σ
// assertion stays armed), "targeted,b=N" concentrates the budget on the
// most-loaded servers of the live access strategy, and "timing" keys
// Byzantine modes to the protocol phase. Without -availability, -adversary
// runs the same scheduler live beside the workload (mobile corruption
// within its budget), composing with -churn.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"bqs"
	"bqs/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bqs-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	system := flag.String("system", "threshold", "quorum system: threshold|grid|mgrid|rt|boostfpp|mpath|wheel")
	b := flag.Int("b", 3, "masking bound b")
	strategy := flag.String("strategy", "uniform", "quorum selection: uniform|optimal (optimal installs the Definition 3.8 LP strategy)")
	byzantine := flag.Int("byzantine", 3, "number of Byzantine (fabricating) servers to inject")
	crashed := flag.Int("crashed", 0, "number of crashed servers to inject")
	clients := flag.Int("clients", 8, "concurrent clients")
	ops := flag.Int("ops", 100, "operations per client (mixed ~50/50 writes and reads)")
	duration := flag.Duration("duration", 0, "time-bounded run: clients issue ops until this elapses (overrides -ops)")
	drop := flag.Float64("drop", 0, "per-message response-loss probability")
	latency := flag.Duration("latency", 0, "base per-server round-trip latency")
	jitter := flag.Duration("jitter", 0, "per-server latency jitter (uniform on [0,jitter])")
	timeout := flag.Duration("timeout", 0, "per-operation deadline (0 = none)")
	deterministic := flag.Bool("deterministic", false, "probe sequentially for exact reproducibility")
	seed := flag.Int64("seed", 1, "random seed")
	keys := flag.Int("keys", 0, "key-space size: each op targets one of N keys (0 = the single default register)")
	keyDist := flag.String("key-dist", "uniform", "key popularity: uniform|zipf:S (S > 1, e.g. zipf:1.1)")
	batch := flag.Int("batch", 1, "operations in flight per client via a Session; probes coalesce into batched frames (1 = blocking calls)")
	faultSchedule := flag.String("fault-schedule", "", "fault timeline \"100ms:3:crashed,600ms:3:correct\" replayed while the workload runs")
	churn := flag.String("churn", "", "stochastic churn \"mtbf=300ms,mttr=100ms[,down=behavior][,servers=lo-hi]\" over the -duration horizon")
	suspicionTTL := flag.Duration("suspicion-ttl", 0, "client suspicion TTL so recovered servers regain traffic (0 = auto: 50ms when churn is active)")
	availability := flag.String("availability", "", "availability experiment \"p=0.1,epochs=2000[,seed=N][,mctrials=N]\": empirical crash rate vs F_p(Q); replaces the workload")
	pVector := flag.String("p-vector", "", "heterogeneous per-server crash probabilities for -availability: \"0.1\" uniform, \"0.1,0.2,...\" positional, or \"*:0.05,0-3:0.2\" ranged")
	domains := flag.String("domains", "", "correlated failure domains for -availability: \"members:prob\" entries, e.g. \"0-3:0.05,8+12:0.2\"")
	adversary := flag.String("adversary", "", "adversarial fault placement \"random|targeted|timing[,b=N][,behavior=MODE][,interval=D][,seed=N]\": live against the workload, or per-epoch with -availability")
	reconfigSpec := flag.String("reconfig", "", "resize schedule \"at=5s:mgrid:36[,at=20s:compose:6x6]\" replayed while the workload runs; each target keeps -b")
	dataDir := flag.String("data-dir", "", "back every server with a durable WAL+snapshot store under DIR/server-NNNN (empty = in-memory registers)")
	fsync := flag.Bool("fsync", true, "fsync each durable group commit (only with -data-dir)")
	benchJSON := flag.String("bench-json", "", "write the run's benchmark snapshot (ops/s, p50/p99, measured load) as JSON to this path")
	metricsAddr := flag.String("metrics-addr", "", "serve live telemetry on this address: /metrics (Prometheus), /vars, /events, /debug/pprof")
	flag.Parse()

	sys, err := harness.BuildSystem(*system, *b)
	if err != nil {
		return err
	}
	fmt.Printf("system: %s (n=%d, b=%d, f=%d)\n",
		sys.Name(), sys.UniverseSize(), *b, bqs.Resilience(sys))

	// The registry always exists — instruments are cheap and the bench
	// snapshot reads its latency histograms — but the HTTP endpoint only
	// binds under -metrics-addr.
	reg := bqs.NewMetricsRegistry()
	if *metricsAddr != "" {
		ms, err := bqs.ServeMetrics(*metricsAddr, reg)
		if err != nil {
			return err
		}
		defer ms.Close()
		fmt.Printf("metrics: http://%s/metrics (also /vars, /events, /debug/pprof)\n", ms.Addr())
	}

	if *availability != "" {
		// The availability experiment defines its own workload and fault
		// model; silently dropping other explicitly-set flags would hand
		// the user a valid-looking F_p that answers a different question.
		if conflicts := availabilityFlagConflicts(); len(conflicts) > 0 {
			return fmt.Errorf("-availability is a standalone experiment (only -system, -b, -seed, -p-vector, -domains and -adversary compose with it); drop -%s", strings.Join(conflicts, ", -"))
		}
		return runAvailability(sys, *b, *availability, *pVector, *domains, *adversary, *seed, reg)
	}
	if *pVector != "" || *domains != "" {
		return fmt.Errorf("-p-vector and -domains shape the -availability crash model; for live-workload faults use -churn (per-group mtbf/mttr and correlated domains)")
	}
	var advCfg *bqs.AdversaryConfig
	if *adversary != "" {
		parsed, err := bqs.ParseAdversary(*adversary)
		if err != nil {
			return err
		}
		advCfg = &parsed
	}

	schedule, err := harness.BuildSchedule(*faultSchedule, *churn, sys.UniverseSize(), *duration, *seed)
	if err != nil {
		return err
	}
	reconfigSteps, err := harness.ParseReconfigSchedule(*reconfigSpec, *b)
	if err != nil {
		return err
	}
	ttl := harness.ChurnTTL(schedule, *suspicionTTL)
	if advCfg != nil && ttl == 0 {
		// A live adversary flips behaviors just like churn does; clients
		// need suspicion aging to re-admit restored victims.
		ttl = harness.DefaultChurnSuspicionTTL
	}

	opts := []bqs.ClusterOption{bqs.WithSeed(*seed), bqs.WithDropRate(*drop),
		bqs.WithLatency(*latency, *jitter), bqs.WithMetrics(reg)}
	stratOpt, err := harness.StrategyOption(*strategy)
	if err != nil {
		return err
	}
	if stratOpt != nil {
		opts = append(opts, stratOpt)
	}
	if *deterministic {
		opts = append(opts, bqs.WithDeterministic())
		// Reproducibility needs a single-threaded workload: concurrent
		// clients interleave nondeterministically over the shared servers
		// and transport rng no matter how probes are issued.
		if *clients != 1 {
			fmt.Printf("note: -deterministic forces -clients 1 (was %d)\n", *clients)
			*clients = 1
		}
		// Session pipelining interleaves operations nondeterministically.
		if *batch > 1 {
			fmt.Printf("note: -deterministic forces -batch 1 (was %d)\n", *batch)
			*batch = 1
		}
	}
	storeLabel := "memory"
	if *dataDir != "" {
		storeLabel = "durable"
		dir, syncOn := *dataDir, *fsync
		opts = append(opts, bqs.WithStores(func(id int) (bqs.Store, error) {
			return bqs.OpenDiskStore(filepath.Join(dir, fmt.Sprintf("server-%04d", id)),
				bqs.WithFsync(syncOn), bqs.WithStoreMetrics(reg))
		}))
	}
	cluster, err := bqs.NewCluster(sys, *b, opts...)
	if err != nil {
		return err
	}
	defer cluster.Close()
	if *dataDir != "" {
		fmt.Printf("store: durable under %s (fsync=%v)\n", *dataDir, *fsync)
	}
	rng := rand.New(rand.NewSource(*seed))
	perm := rng.Perm(sys.UniverseSize())
	if *byzantine+*crashed > len(perm) {
		return fmt.Errorf("too many faults for %d servers", len(perm))
	}
	if err := cluster.InjectFault(bqs.ByzantineFabricate, perm[:*byzantine]...); err != nil {
		return err
	}
	if err := cluster.InjectFault(bqs.Crashed, perm[*byzantine:*byzantine+*crashed]...); err != nil {
		return err
	}
	fmt.Printf("faults: %d byzantine (fabricating), %d crashed\n", *byzantine, *crashed)

	dist, err := harness.ParseKeyDist(*keyDist)
	if err != nil {
		return err
	}
	w := harness.Workload{Clients: *clients, Ops: *ops, Duration: *duration, Timeout: *timeout,
		SuspicionTTL: ttl, Keys: *keys, Dist: dist, Batch: *batch, Seed: *seed}
	fmt.Printf("workload: %s (strategy=%s, drop=%.3f, latency=%v±%v)\n",
		w.Describe(), *strategy, *drop, *latency, *jitter)

	// The churn engine, the adversary and the resize schedule run beside
	// the workload, cancelled at the run boundary.
	driver := harness.StartChurn(cluster, schedule, ttl, reg)
	var advDriver *harness.AdversaryDriver
	if advCfg != nil {
		advDriver, err = harness.StartAdversary(*advCfg, cluster, cluster, sys.UniverseSize(), reg)
		if err != nil {
			return err
		}
	}
	recDriver := harness.StartReconfig(cluster, reconfigSteps)
	counters := harness.Run(cluster, w)
	recErr := recDriver.Stop()
	if err := advDriver.Stop(); err != nil {
		return err
	}
	if err := driver.Stop(); err != nil {
		return err
	}
	if recErr != nil {
		return recErr
	}

	// After a resize the report and snapshot describe the system the run
	// ended on — its universe sizes the Theorem 4.1 bounds and its LP is
	// what the (current-epoch-only) measurement must converge to.
	reportSys := sys
	if recDriver.Applied() > 0 {
		if hs, ok := cluster.System().(harness.System); ok {
			reportSys = hs
		}
	}
	sum := harness.Report(cluster, reportSys, *b, counters)
	if *benchJSON != "" {
		snap := harness.Snapshot("sim", reportSys, *b, storeLabel, w, counters, sum)
		if err := harness.WriteBenchJSON(*benchJSON, []harness.BenchSnapshot{snap}); err != nil {
			return err
		}
		fmt.Printf("bench: wrote %s (%.0f ops/s, p50 %.2fms, p99 %.2fms, %s store)\n",
			*benchJSON, snap.OpsPerSec, snap.P50Ms, snap.P99Ms, snap.Store)
	}
	knob := "-ops"
	if *duration > 0 {
		knob = "-duration"
	}
	faultFree := *crashed == 0 && *drop == 0 && schedule.FaultFree() && advCfg == nil
	switch {
	case !math.IsNaN(sum.StrategyLoad) && faultFree:
		// With the LP strategy installed and no fault-driven re-selection,
		// the measurement must track the LP value — this is the acceptance
		// check for the LP-to-live path, and it stays armed under a
		// fault-free schedule: churn instrumentation alone must not move
		// the measurement.
		if dev := sum.Peak/sum.StrategyLoad - 1; math.Abs(dev) > 0.10 {
			return fmt.Errorf("measured peak load %.4f is %+.1f%% from the LP L(Q) = %.4f (outside 10%%) — increase %s for convergence, or report a strategy bug",
				sum.Peak, 100*dev, sum.StrategyLoad, knob)
		}
	case math.IsNaN(sum.StrategyLoad) && *byzantine <= *b && faultFree && sum.Peak < sum.Lower:
		fmt.Printf("  note: measurement below the lower bound — increase %s for convergence\n", knob)
	}

	withinBudget := *byzantine <= *b && (advCfg == nil || advCfg.B <= *b)
	if counters.Violations > 0 && withinBudget {
		return fmt.Errorf("safety violated within the masking bound — this is a bug")
	}
	if counters.Violations > 0 {
		fmt.Println("violations are expected: injected Byzantine faults exceed b")
	}
	return nil
}

// availabilityFlagConflicts returns the explicitly-set flags that
// -availability mode would otherwise silently ignore.
func availabilityFlagConflicts() []string {
	allowed := map[string]bool{"system": true, "b": true, "seed": true, "availability": true,
		"metrics-addr": true, "p-vector": true, "domains": true, "adversary": true}
	var out []string
	flag.Visit(func(f *flag.Flag) {
		if !allowed[f.Name] {
			out = append(out, f.Name)
		}
	})
	return out
}

// runAvailability is the -availability mode: measure the empirical
// system-crash rate through the live engine and hold it against the
// analytic F_p(Q) ladder, failing beyond 3σ of the exact value. The
// global -seed seeds the experiment unless the spec's seed= overrides it.
// -p-vector/-domains swap the i.i.d. draws for the heterogeneous model
// (exact companion: the generalized F); -adversary swaps them for
// adversarial placement (exact companion only for random placement).
func runAvailability(sys harness.System, b int, spec, pVector, domains, adversary string, seed int64, reg *bqs.MetricsRegistry) error {
	cfg, err := harness.ParseAvailabilitySpec(spec, seed)
	if err != nil {
		return err
	}
	n := sys.UniverseSize()
	if pVector != "" {
		if cfg.PVec, err = bqs.ParsePVector(pVector, n); err != nil {
			return err
		}
	}
	if domains != "" {
		if cfg.Domains, err = bqs.ParseDomains(domains, n); err != nil {
			return err
		}
	}
	if adversary != "" {
		parsed, err := bqs.ParseAdversary(adversary)
		if err != nil {
			return err
		}
		cfg.Adversary = &parsed
	}
	cfg.Registry = reg
	switch {
	case cfg.Adversary != nil:
		fmt.Printf("availability: %s adversary (budget %d) over %d epochs (seed %d)\n",
			cfg.Adversary.Kind, cfg.Adversary.B, cfg.Epochs, cfg.Seed)
	case len(cfg.PVec) > 0 || len(cfg.Domains) > 0:
		fmt.Printf("availability: heterogeneous model (%d-entry p vector, %d domains) over %d epochs (seed %d)\n",
			len(cfg.PVec), len(cfg.Domains), cfg.Epochs, cfg.Seed)
	default:
		fmt.Printf("availability: p=%g over %d epochs (seed %d)\n", cfg.P, cfg.Epochs, cfg.Seed)
	}
	res, err := harness.RunAvailability(sys, b, cfg)
	if err != nil {
		return err
	}
	harness.ReportAvailability(res)
	if res.ExactOK && !res.WithinSigma(3) {
		return fmt.Errorf("empirical crash rate %.4f outside 3σ of exact F_p = %.4f over %d epochs — availability regression",
			res.Rate, res.Exact, res.Epochs)
	}
	if !res.ExactOK {
		if res.Adversary != "" {
			fmt.Println("  note: no analytic crash rate for this placement strategy — measured rate only")
		} else {
			fmt.Println("  note: universe too large for exact F_p — no 3σ assertion (Monte Carlo shown above)")
		}
	}
	return nil
}
