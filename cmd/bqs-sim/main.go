// bqs-sim runs the replicated shared-variable protocol of [MR98a] over a
// chosen b-masking quorum system with injected crash and Byzantine faults,
// reporting whether every read returned the last written value.
//
// Usage:
//
//	bqs-sim [-system threshold|grid|mgrid|rt|boostfpp|mpath] [-b 3]
//	        [-byzantine 3] [-crashed 2] [-ops 100] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"bqs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bqs-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	system := flag.String("system", "threshold", "quorum system: threshold|grid|mgrid|rt|boostfpp|mpath")
	b := flag.Int("b", 3, "masking bound b")
	byzantine := flag.Int("byzantine", 3, "number of Byzantine (fabricating) servers to inject")
	crashed := flag.Int("crashed", 0, "number of crashed servers to inject")
	ops := flag.Int("ops", 100, "write+read operation pairs")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	sys, err := buildSystem(*system, *b)
	if err != nil {
		return err
	}
	fmt.Printf("system: %s (n=%d, b=%d, f=%d)\n",
		sys.Name(), sys.UniverseSize(), *b, resilienceOf(sys))

	cluster, err := bqs.NewCluster(sys, *b, *seed)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	perm := rng.Perm(sys.UniverseSize())
	if *byzantine+*crashed > len(perm) {
		return fmt.Errorf("too many faults for %d servers", len(perm))
	}
	if err := cluster.InjectFault(bqs.ByzantineFabricate, perm[:*byzantine]...); err != nil {
		return err
	}
	if err := cluster.InjectFault(bqs.Crashed, perm[*byzantine:*byzantine+*crashed]...); err != nil {
		return err
	}
	fmt.Printf("faults: %d byzantine (fabricating), %d crashed\n", *byzantine, *crashed)

	writer := cluster.NewClient(1)
	reader := cluster.NewClient(2)
	ok, bad := 0, 0
	for i := 0; i < *ops; i++ {
		want := fmt.Sprintf("value-%04d", i)
		if err := writer.Write(want); err != nil {
			return fmt.Errorf("write %d: %w", i, err)
		}
		got, err := reader.Read()
		if err != nil {
			return fmt.Errorf("read %d: %w", i, err)
		}
		if got.Value == want {
			ok++
		} else {
			bad++
			fmt.Printf("  VIOLATION at op %d: read %q, want %q\n", i, got.Value, want)
		}
	}
	fmt.Printf("result: %d/%d reads returned the last write (%d violations)\n", ok, *ops, bad)
	if bad > 0 && *byzantine <= *b {
		return fmt.Errorf("safety violated within the masking bound — this is a bug")
	}
	if bad > 0 {
		fmt.Println("violations are expected: injected Byzantine faults exceed b")
	}
	return nil
}

// maskingSystem is what the simulator needs: selection + parameters.
type maskingSystem interface {
	bqs.System
	bqs.Parameterized
}

func resilienceOf(s maskingSystem) int { return bqs.Resilience(s) }

func buildSystem(kind string, b int) (maskingSystem, error) {
	switch kind {
	case "threshold":
		return bqs.NewMaskingThreshold(4*b+1, b)
	case "grid":
		return bqs.NewGrid(3*b+1, b)
	case "mgrid":
		return bqs.NewMGrid(2*b+2, b)
	case "rt":
		// Depth chosen so RT(4,3) masks at least b: b = (2^h − 1)/2.
		h := 1
		for (1<<uint(h)-1)/2 < b {
			h++
		}
		return bqs.NewRT(4, 3, h)
	case "boostfpp":
		return bqs.NewBoostFPP(3, b)
	case "mpath":
		d := 2 * (b + 2)
		return bqs.NewMPath(d, b)
	default:
		return nil, fmt.Errorf("unknown system %q", kind)
	}
}
