// bqs-sim drives the replicated shared-variable protocol of [MR98a] over a
// chosen b-masking quorum system with injected crash and Byzantine faults.
// It is a throughput harness: any number of concurrent clients issue mixed
// reads and writes, every probe feeds the cluster's live load profile, and
// the run ends by comparing the measured busiest-server frequency against
// the paper's L(Q) lower bounds (Theorem 4.1).
//
// Usage:
//
//	bqs-sim [-system threshold|grid|mgrid|rt|boostfpp|mpath] [-b 3]
//	        [-byzantine 3] [-crashed 2] [-clients 8] [-ops 100]
//	        [-drop 0] [-latency 0] [-jitter 0] [-timeout 0]
//	        [-deterministic] [-seed 1]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bqs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bqs-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	system := flag.String("system", "threshold", "quorum system: threshold|grid|mgrid|rt|boostfpp|mpath")
	b := flag.Int("b", 3, "masking bound b")
	byzantine := flag.Int("byzantine", 3, "number of Byzantine (fabricating) servers to inject")
	crashed := flag.Int("crashed", 0, "number of crashed servers to inject")
	clients := flag.Int("clients", 8, "concurrent clients")
	ops := flag.Int("ops", 100, "operations per client (mixed ~50/50 writes and reads)")
	drop := flag.Float64("drop", 0, "per-message response-loss probability")
	latency := flag.Duration("latency", 0, "base per-server round-trip latency")
	jitter := flag.Duration("jitter", 0, "per-server latency jitter (uniform on [0,jitter])")
	timeout := flag.Duration("timeout", 0, "per-operation deadline (0 = none)")
	deterministic := flag.Bool("deterministic", false, "probe sequentially for exact reproducibility")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	sys, err := buildSystem(*system, *b)
	if err != nil {
		return err
	}
	fmt.Printf("system: %s (n=%d, b=%d, f=%d)\n",
		sys.Name(), sys.UniverseSize(), *b, resilienceOf(sys))

	opts := []bqs.ClusterOption{bqs.WithSeed(*seed), bqs.WithDropRate(*drop), bqs.WithLatency(*latency, *jitter)}
	if *deterministic {
		opts = append(opts, bqs.WithDeterministic())
		// Reproducibility needs a single-threaded workload: concurrent
		// clients interleave nondeterministically over the shared servers
		// and transport rng no matter how probes are issued.
		if *clients != 1 {
			fmt.Printf("note: -deterministic forces -clients 1 (was %d)\n", *clients)
			*clients = 1
		}
	}
	cluster, err := bqs.NewCluster(sys, *b, opts...)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	perm := rng.Perm(sys.UniverseSize())
	if *byzantine+*crashed > len(perm) {
		return fmt.Errorf("too many faults for %d servers", len(perm))
	}
	if err := cluster.InjectFault(bqs.ByzantineFabricate, perm[:*byzantine]...); err != nil {
		return err
	}
	if err := cluster.InjectFault(bqs.Crashed, perm[*byzantine:*byzantine+*crashed]...); err != nil {
		return err
	}
	fmt.Printf("faults: %d byzantine (fabricating), %d crashed\n", *byzantine, *crashed)
	fmt.Printf("workload: %d clients × %d ops (drop=%.3f, latency=%v±%v)\n",
		*clients, *ops, *drop, *latency, *jitter)

	var (
		wg                       sync.WaitGroup
		reads, writes            atomic.Int64
		violations, noCandidates atomic.Int64
		failures                 atomic.Int64
	)
	start := time.Now()
	for id := 0; id < *clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := cluster.NewClient(id)
			for op := 0; op < *ops; op++ {
				opCtx, cancel := context.Background(), context.CancelFunc(func() {})
				if *timeout > 0 {
					opCtx, cancel = context.WithTimeout(context.Background(), *timeout)
				}
				if (id+op)%2 == 0 {
					if err := cl.Write(opCtx, fmt.Sprintf("c%d-op%04d", id, op)); err != nil {
						failures.Add(1)
					} else {
						writes.Add(1)
					}
					cancel()
					continue
				}
				got, err := cl.Read(opCtx)
				cancel()
				switch {
				case errors.Is(err, bqs.ErrNoCandidate):
					noCandidates.Add(1)
				case err != nil:
					failures.Add(1)
				case strings.HasPrefix(got.Value, bqs.FabricatedValue):
					violations.Add(1)
				default:
					reads.Add(1)
				}
			}
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := int64(*clients) * int64(*ops)
	fmt.Printf("result: %d reads ok, %d writes ok, %d no-candidate, %d failed, %d VIOLATIONS\n",
		reads.Load(), writes.Load(), noCandidates.Load(), failures.Load(), violations.Load())
	fmt.Printf("throughput: %d ops in %v = %.0f ops/s\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())

	peak := cluster.PeakLoad()
	lower := bqs.LoadLowerBound(sys.UniverseSize(), *b, sys.MinQuorumSize())
	global := bqs.GlobalLoadLowerBound(sys.UniverseSize(), *b)
	fmt.Printf("measured load: busiest server at %.4f of quorum accesses\n", peak)
	fmt.Printf("paper bounds:  L(Q) ≥ %.4f (Thm 4.1), ≥ %.4f (Cor 4.2)\n", lower, global)
	if *byzantine <= *b && *crashed == 0 && *drop == 0 && peak < lower {
		fmt.Println("  note: measurement below the lower bound — increase -ops for convergence")
	}

	if violations.Load() > 0 && *byzantine <= *b {
		return fmt.Errorf("safety violated within the masking bound — this is a bug")
	}
	if violations.Load() > 0 {
		fmt.Println("violations are expected: injected Byzantine faults exceed b")
	}
	return nil
}

// maskingSystem is what the simulator needs: selection + parameters.
type maskingSystem interface {
	bqs.System
	bqs.Parameterized
}

func resilienceOf(s maskingSystem) int { return bqs.Resilience(s) }

func buildSystem(kind string, b int) (maskingSystem, error) {
	switch kind {
	case "threshold":
		return bqs.NewMaskingThreshold(4*b+1, b)
	case "grid":
		return bqs.NewGrid(3*b+1, b)
	case "mgrid":
		return bqs.NewMGrid(2*b+2, b)
	case "rt":
		// Depth chosen so RT(4,3) masks at least b: b = (2^h − 1)/2.
		h := 1
		for (1<<uint(h)-1)/2 < b {
			h++
		}
		return bqs.NewRT(4, 3, h)
	case "boostfpp":
		return bqs.NewBoostFPP(3, b)
	case "mpath":
		d := 2 * (b + 2)
		return bqs.NewMPath(d, b)
	default:
		return nil, fmt.Errorf("unknown system %q", kind)
	}
}
