// bqs-verify builds a construction from command-line parameters and
// verifies the paper's claims about it: the Lemma 3.6 masking conditions,
// the Theorem 4.1 / Corollary 4.2 load bounds, the Propositions 4.3–4.5
// crash bounds, and — when the instance is small enough to enumerate —
// the closed-form parameters against exhaustive computation.
//
// Usage:
//
//	bqs-verify -system rt -k 4 -l 3 -h 2
//	bqs-verify -system mgrid -d 7 -b 3
//	bqs-verify -system threshold -n 13 -b 3
//	bqs-verify -system boostfpp -q 3 -b 2
//	bqs-verify -system mpath -d 9 -b 4
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"bqs"
	"bqs/internal/core"
	"bqs/internal/measures"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bqs-verify:", err)
		os.Exit(1)
	}
}

type verifiable interface {
	bqs.System
	bqs.Parameterized
}

// enumerable lets constructions expose an exhaustive cross-check.
type enumerable interface {
	Enumerate(limit int) (*core.ExplicitSystem, error)
}

func run() error {
	system := flag.String("system", "mgrid", "threshold|grid|mgrid|rt|boostfpp|mpath|mpathedge")
	n := flag.Int("n", 13, "universe size (threshold)")
	d := flag.Int("d", 7, "grid side (grid/mgrid/mpath/mpathedge)")
	b := flag.Int("b", 3, "masking target b")
	k := flag.Int("k", 4, "RT block arity")
	l := flag.Int("l", 3, "RT block quota")
	h := flag.Int("h", 2, "RT depth")
	q := flag.Int("q", 3, "projective plane order (boostfpp)")
	p := flag.Float64("p", 0.125, "crash probability for bound checks")
	trials := flag.Int("trials", 3000, "Monte Carlo trials")
	flag.Parse()

	var (
		sys verifiable
		err error
	)
	switch *system {
	case "threshold":
		sys, err = bqs.NewMaskingThreshold(*n, *b)
	case "grid":
		sys, err = bqs.NewGrid(*d, *b)
	case "mgrid":
		sys, err = bqs.NewMGrid(*d, *b)
	case "rt":
		sys, err = bqs.NewRT(*k, *l, *h)
	case "boostfpp":
		sys, err = bqs.NewBoostFPP(*q, *b)
	case "mpath":
		sys, err = bqs.NewMPath(*d, *b)
	case "mpathedge":
		sys, err = bqs.NewMPathEdge(*d, *b)
	default:
		return fmt.Errorf("unknown system %q", *system)
	}
	if err != nil {
		return err
	}

	fmt.Printf("== %s ==\n", sys.Name())
	nn := sys.UniverseSize()
	bb := bqs.MaskingBound(sys)
	fmt.Printf("n=%d  c=%d  IS=%d  MT=%d\n", nn, sys.MinQuorumSize(), sys.MinIntersection(), sys.MinTransversal())
	fmt.Printf("masking bound b=%d, resilience f=%d\n", bb, bqs.Resilience(sys))

	check := func(name string, ok bool) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		fmt.Printf("  [%s] %s\n", status, name)
	}

	check("Lemma 3.6: MT ≥ b+1 and IS ≥ 2b+1 at the declared bound",
		bqs.IsBMasking(sys, bb))

	// Load bounds.
	type loaded interface{ Load() float64 }
	if ld, ok := sys.(loaded); ok {
		load := ld.Load()
		check(fmt.Sprintf("Thm 4.1: L=%.4f ≥ max{(2b+1)/c, c/n}=%.4f", load,
			bqs.LoadLowerBound(nn, bb, sys.MinQuorumSize())),
			load >= bqs.LoadLowerBound(nn, bb, sys.MinQuorumSize())-1e-9)
		check(fmt.Sprintf("Cor 4.2: L ≥ √((2b+1)/n)=%.4f", bqs.GlobalLoadLowerBound(nn, bb)),
			load >= bqs.GlobalLoadLowerBound(nn, bb)-1e-9)
	}

	// Crash bounds via Monte Carlo.
	rng := rand.New(rand.NewSource(1))
	mc, err := bqs.CrashProbabilityMC(sys, *p, *trials, rng)
	if err != nil {
		return err
	}
	slack := 5*mc.StdErr + 1e-9
	fmt.Printf("F_%.3f ≈ %.4g ± %.2g (%d trials)\n", *p, mc.Estimate, mc.StdErr, mc.Trials)
	check("Prop 4.3: F_p ≥ p^MT",
		mc.Estimate >= bqs.CrashLowerBoundMT(sys.MinTransversal(), *p)-slack)
	check("Prop 4.4: F_p ≥ p^(c−2b)",
		mc.Estimate >= bqs.CrashLowerBoundMasking(sys.MinQuorumSize(), bb, *p)-slack)
	if bqs.Prop45Applies(sys) {
		check("Prop 4.5: F_p ≥ p^(b+1)",
			mc.Estimate >= bqs.CrashLowerBoundB(bb, *p)-slack)
	}

	// Exhaustive cross-check when the construction supports enumeration
	// and the instance is small.
	if en, ok := sys.(enumerable); ok {
		ex, err := en.Enumerate(50000)
		if err == nil {
			check("enumeration: c matches", ex.MinQuorumSize() == sys.MinQuorumSize())
			check("enumeration: IS matches", ex.MinIntersection() == sys.MinIntersection())
			check("enumeration: MT matches", ex.MinTransversal() == sys.MinTransversal())
			if ex.UniverseSize() <= measures.MaxExactUniverse {
				exact, err := bqs.CrashProbabilityExact(ex, *p)
				if err == nil {
					fmt.Printf("exact F_%.3f = %.6g\n", *p, exact)
				}
			}
		} else {
			fmt.Printf("  [skip] enumeration: %v\n", err)
		}
	}

	// Quorum-pair intersection audit (Definition 3.5, sampled).
	audit := 0
	for i := 0; i < 50; i++ {
		q1, err1 := sys.SelectQuorum(rng, bqs.NewSet(nn))
		q2, err2 := sys.SelectQuorum(rng, bqs.NewSet(nn))
		if err1 != nil || err2 != nil {
			continue
		}
		if q1.IntersectionCount(q2) >= 2*bb+1 {
			audit++
		}
	}
	check(fmt.Sprintf("Def 3.5: sampled quorum pairs intersect in ≥ 2b+1 (50/50 → %d/50)", audit),
		audit == 50)
	return nil
}
