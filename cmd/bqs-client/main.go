// bqs-client drives the [MR98a] mixed read/write workload against a
// networked cluster of bqs-server shards, over the TCP wire protocol with
// pipelined, auto-reconnecting connections. It is the remote counterpart
// of cmd/bqs-sim's in-memory harness — the workload and report come from
// internal/harness, shared between the two, so their numbers are directly
// comparable: ops/sec plus the measured busiest-server access frequency
// next to the paper's L(Q) lower bounds (Theorem 4.1 / Corollary 4.2).
//
// Usage (the 16-server M-Grid(4,1) split across three shards):
//
//	bqs-server -listen :7000 -servers 0-5 &
//	bqs-server -listen :7001 -servers 6-10 &
//	bqs-server -listen :7002 -servers 11-15 -byzantine 12 &
//	bqs-client -system mgrid -b 1 \
//	    -routes 0-5=localhost:7000,6-10=localhost:7001,11-15=localhost:7002 \
//	    -clients 8 -duration 5s -keys 64 -key-dist zipf:1.1 -batch 16
//
// -keys/-key-dist spread the workload over a keyed object space (zipf:S
// for skewed popularity), and -batch M drives each client through a
// Session with M operations in flight: probes destined for replicas of
// one shard coalesce into a single wire-v2 batch frame, the biggest
// throughput lever on a real network. -wire-version 1 talks to old
// daemons (single keyless v1 frames only).
//
// The route table must cover every server of the chosen system's
// universe; run bqs-client with a -system/-b pair first to learn the
// universe size it prints.
//
// bqs-client is also the remote schedule driver of the churn engine:
// -fault-schedule replays a deterministic fault timeline and -churn a
// seeded stochastic one against the live deployment — each flip travels
// as a wire control frame to the shard hosting the addressed server, so
// replicas crash, turn Byzantine and recover mid-run exactly as they do
// in-memory, and -suspicion-ttl controls how fast clients re-admit
// recovered servers. A flip to an unreachable shard is counted as a miss
// and the schedule keeps going.
//
// -adversary runs the adversarial scheduler remotely the same way:
// "random,b=N" migrates N crash/Byzantine faults at random,
// "targeted,b=N" concentrates them on the most-loaded servers of the
// client's own access strategy (aimed with the load profile the cluster
// accumulates locally), and "timing" keys Byzantine modes to the protocol
// phase — every flip a wire control frame, every victim restored at the
// run boundary.
//
// Live reconfiguration: -reconfig replays a resize schedule
// ("at=5s:mgrid:36") against the running fleet — each step drains the
// current epoch, pushes the epoch-numbered record to every shard over
// the 0x57 reconfig frame (each daemon merges its replica state into
// the new universe before acking) and cuts the client over, with zero
// safety violations under sustained load. The route table must cover
// the largest target universe, so provision shard daemons for the
// post-resize fleet up front (idle replicas cost nothing). The client
// is epoch-aware by default at wire v2: every pipelined request is
// covered by an announce frame pinning its epoch, stale requests bounce
// with a retriable wrongepoch answer, and a follower self-heals the
// epoch plane when another coordinator resizes the fleet first.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bqs"
	"bqs/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bqs-client:", err)
		os.Exit(1)
	}
}

func run() error {
	system := flag.String("system", "mgrid", "quorum system: threshold|grid|mgrid|rt|boostfpp|mpath|wheel")
	b := flag.Int("b", 1, "masking bound b")
	strategy := flag.String("strategy", "uniform", "quorum selection: uniform|optimal (optimal installs the Definition 3.8 LP strategy)")
	routes := flag.String("routes", "", "route table, e.g. 0-8=host:7000,9-24=host:7001 (required)")
	clients := flag.Int("clients", 8, "concurrent clients")
	ops := flag.Int("ops", 100, "operations per client (ignored when -duration is set)")
	duration := flag.Duration("duration", 0, "time-bounded run: clients issue ops until this elapses")
	timeout := flag.Duration("timeout", 2*time.Second, "per-operation deadline (0 = none)")
	poolSize := flag.Int("pool", 1, "TCP connections per server address")
	seed := flag.Int64("seed", 1, "random seed for quorum selection")
	keys := flag.Int("keys", 0, "key-space size: each op targets one of N keys (0 = the single default register)")
	keyDist := flag.String("key-dist", "uniform", "key popularity: uniform|zipf:S (S > 1, e.g. zipf:1.1)")
	batch := flag.Int("batch", 1, "operations in flight per client via a Session; probes to one shard share a frame (1 = blocking calls)")
	wireVersion := flag.Int("wire-version", bqs.WireProtoVersion, "highest wire protocol version to speak (1 for old daemons: keyless single frames only)")
	faultSchedule := flag.String("fault-schedule", "", "fault timeline \"100ms:3:crashed,600ms:3:correct\" driven remotely via control frames")
	churn := flag.String("churn", "", "stochastic churn \"mtbf=300ms,mttr=100ms[,down=behavior][,servers=lo-hi]\" over the -duration horizon, driven remotely")
	suspicionTTL := flag.Duration("suspicion-ttl", 0, "client suspicion TTL so recovered servers regain traffic (0 = auto: 50ms when churn is active)")
	adversary := flag.String("adversary", "", "adversarial fault placement \"random|targeted|timing[,b=N][,behavior=MODE][,interval=D][,seed=N]\" driven remotely via control frames")
	reconfigSpec := flag.String("reconfig", "", "resize schedule \"at=5s:mgrid:36[,at=...]\" driven against the live fleet: each step drains, installs the new epoch on every shard and cuts over; routes must cover the largest target universe")
	benchJSON := flag.String("bench-json", "", "write the run's benchmark snapshot (ops/s, p50/p99, measured load) as JSON to this path")
	storeLabel := flag.String("store-label", "memory", "store engine label recorded in -bench-json output (set to durable when the daemons run -data-dir)")
	metricsAddr := flag.String("metrics-addr", "", "serve live telemetry on this address: /metrics (Prometheus), /vars, /events, /debug/pprof")
	flag.Parse()

	sys, err := harness.BuildSystem(*system, *b)
	if err != nil {
		return err
	}
	n := sys.UniverseSize()
	fmt.Printf("system: %s (n=%d, b=%d)\n", sys.Name(), n, *b)
	if *routes == "" {
		return fmt.Errorf("-routes is required; the universe needs addresses for servers 0-%d", n-1)
	}
	table, err := bqs.ParseRoutes(*routes)
	if err != nil {
		return err
	}
	reconfigSteps, err := harness.ParseReconfigSchedule(*reconfigSpec, *b)
	if err != nil {
		return err
	}
	// Coverage is checked against the largest universe the run will ever
	// address, so a scheduled resize cannot discover a missing shard
	// address mid-drain.
	if err := bqs.CheckRouteCoverage(table, harness.MaxReconfigUniverse(n, reconfigSteps)); err != nil {
		return err
	}
	// The registry always exists — instruments are cheap and the bench
	// snapshot reads its latency histograms — but the HTTP endpoint only
	// binds under -metrics-addr.
	reg := bqs.NewMetricsRegistry()
	if *metricsAddr != "" {
		ms, err := bqs.ServeMetrics(*metricsAddr, reg)
		if err != nil {
			return err
		}
		defer ms.Close()
		fmt.Printf("metrics: http://%s/metrics (also /vars, /events, /debug/pprof)\n", ms.Addr())
	}
	// The client is always epoch-aware at wire v2: requests announce the
	// epoch their quorum was drawn from, and the follower self-heals on
	// wrongepoch bounces (adopting a newer record another coordinator
	// installed, or re-pushing ours to a shard that lost its epoch).
	// Against v1 daemons the epoch plane disables itself per connection.
	follower := &harness.EpochFollower{}
	tr, err := bqs.DialWire(table, bqs.WithWirePoolSize(*poolSize),
		bqs.WithWireVersion(*wireVersion), bqs.WithWireMetrics(reg),
		bqs.WithWireEpochs(follower.OnStale))
	if err != nil {
		return err
	}
	defer tr.Close()
	opts := []bqs.ClusterOption{bqs.WithSeed(*seed), bqs.WithMetrics(reg),
		bqs.WithTransport(func([]*bqs.Server) bqs.Transport { return tr })}
	stratOpt, err := harness.StrategyOption(*strategy)
	if err != nil {
		return err
	}
	if stratOpt != nil {
		opts = append(opts, stratOpt)
	}
	cluster, err := bqs.NewCluster(sys, *b, opts...)
	if err != nil {
		return err
	}
	follower.Bind(tr, cluster)

	schedule, err := harness.BuildSchedule(*faultSchedule, *churn, n, *duration, *seed)
	if err != nil {
		return err
	}
	var advCfg *bqs.AdversaryConfig
	if *adversary != "" {
		parsed, err := bqs.ParseAdversary(*adversary)
		if err != nil {
			return err
		}
		advCfg = &parsed
	}
	ttl := harness.ChurnTTL(schedule, *suspicionTTL)
	if advCfg != nil && ttl == 0 {
		ttl = harness.DefaultChurnSuspicionTTL
	}

	shards := make(map[string]bool)
	for _, addr := range table {
		shards[addr] = true
	}
	dist, err := harness.ParseKeyDist(*keyDist)
	if err != nil {
		return err
	}
	w := harness.Workload{Clients: *clients, Ops: *ops, Duration: *duration, Timeout: *timeout,
		SuspicionTTL: ttl, Keys: *keys, Dist: dist, Batch: *batch, Seed: *seed}
	fmt.Printf("workload: %s against %d shards (strategy=%s)\n", w.Describe(), len(shards), *strategy)

	// Remote churn: the driver replays the schedule against the
	// deployment itself — each flip is a control frame to the shard
	// hosting the server, so the same timeline that drives an in-memory
	// run drives the live TCP fleet.
	driver := harness.StartChurn(tr, schedule, ttl, reg)
	// Remote adversary: flips go out as control frames like churn's, but
	// the targeted scheduler aims with the client-side load profile the
	// cluster accumulates — the adversary sees exactly the access strategy
	// it is attacking.
	var advDriver *harness.AdversaryDriver
	if advCfg != nil {
		advDriver, err = harness.StartAdversary(*advCfg, tr, cluster, n, reg)
		if err != nil {
			return err
		}
	}
	// The resize schedule drives the whole fleet from here: each step
	// drains the client's epoch, pushes the record to every shard (which
	// merge their own replica state) and cuts over.
	recDriver := harness.StartReconfig(cluster, reconfigSteps)
	counters := harness.Run(cluster, w)
	recErr := recDriver.Stop()
	if err := advDriver.Stop(); err != nil {
		return err
	}
	if err := driver.Stop(); err != nil {
		return err
	}
	if recErr != nil {
		return recErr
	}
	reportSys := sys
	if recDriver.Applied() > 0 {
		if hs, ok := cluster.System().(harness.System); ok {
			reportSys = hs
		}
	}
	sum := harness.Report(cluster, reportSys, *b, counters)
	if *benchJSON != "" {
		snap := harness.Snapshot("client", reportSys, *b, *storeLabel, w, counters, sum)
		if err := harness.WriteBenchJSON(*benchJSON, []harness.BenchSnapshot{snap}); err != nil {
			return err
		}
		fmt.Printf("bench: wrote %s (%.0f ops/s, p50 %.2fms, p99 %.2fms, %s store)\n",
			*benchJSON, snap.OpsPerSec, snap.P50Ms, snap.P99Ms, snap.Store)
	}

	if counters.Violations > 0 {
		if advCfg != nil && advCfg.B > *b {
			fmt.Println("violations are expected: the adversary's budget exceeds b")
			return nil
		}
		return fmt.Errorf("%d reads surfaced fabricated values — more than b Byzantine servers in the deployment, or a protocol bug", counters.Violations)
	}
	return nil
}
