// bqs-figures renders the paper's three construction figures as ASCII art
// (Figure 1: M-Grid quorum; Figure 2: RT(4,3) quorum; Figure 3: M-Path
// disjoint-path quorum under failures) and the Appendix B percolation
// crossing-probability table.
//
// Usage:
//
//	bqs-figures [-seed 3] [-d 16] [-k 1] [-trials 200]
package main

import (
	"flag"
	"fmt"
	"os"

	"bqs/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bqs-figures:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 3, "random seed for quorum selection")
	d := flag.Int("d", 16, "grid side for the percolation table")
	k := flag.Int("k", 1, "disjoint crossings required in the percolation table")
	trials := flag.Int("trials", 200, "percolation trials per point")
	flag.Parse()

	f1, err := bench.Figure1MGrid(*seed)
	if err != nil {
		return err
	}
	fmt.Println(f1)

	f2, err := bench.Figure2RT(*seed)
	if err != nil {
		return err
	}
	fmt.Println(f2)

	f3, err := bench.Figure3MPath(*seed)
	if err != nil {
		return err
	}
	fmt.Println(f3)

	perc, err := bench.PercolationFigure(*d, *k, *trials, *seed)
	if err != nil {
		return err
	}
	fmt.Println(perc)
	return nil
}
