// bqs-tables regenerates the paper's evaluation tables: Table 2 (the
// properties of all six constructions at n ≈ 1024), the Section 8 worked
// example (n ≈ 1024, p = 1/8), the load-vs-lower-bound sweep, the RT
// critical probabilities, and the resilience–load tradeoff.
//
// Usage:
//
//	bqs-tables [-p 0.125] [-trials 4000] [-seed 1] [-only table2|section8|load|rt|tradeoff]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"bqs/internal/bench"
	"bqs/internal/systems"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bqs-tables:", err)
		os.Exit(1)
	}
}

func run() error {
	p := flag.Float64("p", 0.125, "element crash probability for F_p columns")
	trials := flag.Int("trials", 4000, "Monte Carlo trials where no closed form exists")
	seed := flag.Int64("seed", 1, "random seed")
	only := flag.String("only", "", "print a single table: table2|section8|load|rt|tradeoff|boosting|ablation")
	flag.Parse()

	want := func(name string) bool { return *only == "" || *only == name }

	if want("table2") {
		cfg := bench.DefaultTable2Config()
		cfg.P = *p
		cfg.Trials = *trials
		cfg.Seed = *seed
		rows, err := bench.Table2(cfg)
		if err != nil {
			return err
		}
		fmt.Println("== Table 2: constructions at n ≈ 1024 ==")
		fmt.Println(bench.FormatTable2(rows))
	}

	if want("section8") {
		rows, err := bench.Section8(*trials, *seed)
		if err != nil {
			return err
		}
		fmt.Println("== Section 8 worked example ==")
		fmt.Println(bench.FormatSection8(rows))
	}

	if want("load") {
		rows, err := bench.LoadVsLowerBound()
		if err != nil {
			return err
		}
		fmt.Println("== Load vs Theorem 4.1 / Corollary 4.2 lower bounds ==")
		fmt.Println(bench.FormatLoadRows(rows))
	}

	if want("rt") {
		rows, err := bench.RTCriticalProbabilities()
		if err != nil {
			return err
		}
		fmt.Println("== RT critical probabilities (Proposition 5.6) ==")
		fmt.Println(bench.FormatRTCritical(rows))
	}

	if want("tradeoff") {
		rows, err := bench.ResilienceLoadTradeoff()
		if err != nil {
			return err
		}
		fmt.Println("== Resilience–load tradeoff (Section 8) ==")
		fmt.Println(bench.FormatTradeoff(rows))
	}

	if want("crash") {
		rng := rand.New(rand.NewSource(*seed))
		ps := []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40}
		rt, err := systems.NewRT(4, 3, 5)
		if err != nil {
			return err
		}
		rtRows, err := bench.CrashSweep(rt, func(p float64) (float64, float64, error) {
			return rt.CrashProbability(p), 0, nil
		}, ps)
		if err != nil {
			return err
		}
		fmt.Println("== Crash-probability sweeps vs lower bounds ==")
		fmt.Println(bench.FormatCrashRows(rtRows))
		mg, err := systems.NewMGrid(32, 15)
		if err != nil {
			return err
		}
		mgRows, err := bench.CrashSweep(mg, bench.MCEvaluator(mg, *trials, rng), ps)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatCrashRows(mgRows))
	}

	if want("boosting") {
		rows, err := bench.BoostingTable(*p, *trials, *seed)
		if err != nil {
			return err
		}
		fmt.Println("== Boosting arbitrary regular systems (Section 6) ==")
		fmt.Println(bench.FormatBoosting(rows))
	}

	if want("ablation") {
		rows, err := bench.StrategyAblation(*trials, *seed)
		if err != nil {
			return err
		}
		fmt.Println("== Strategy ablation (Definition 3.8 is about strategies) ==")
		fmt.Println(bench.FormatAblation(rows))
	}
	return nil
}
