// Benchmarks regenerating every table and figure in the paper's
// evaluation, plus micro-benchmarks of the quorum machinery itself. Run
// with:
//
//	go test -bench=. -benchmem
//
// Key measured quantities are surfaced via b.ReportMetric so the bench
// output doubles as the experiment log (see EXPERIMENTS.md for the
// paper-vs-measured discussion).
package bqs_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"

	"bqs"
	"bqs/internal/bench"
	"bqs/internal/lattice"
	"bqs/internal/measures"
)

// --- Table 2 -------------------------------------------------------------

func BenchmarkTable2(b *testing.B) {
	cfg := bench.DefaultTable2Config()
	cfg.Trials = 1000
	var rows []bench.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.System {
		case "RT(4,3,h=5)":
			b.ReportMetric(r.Fp, "RT_Fp")
		case "M-Grid(d=32,b=15)":
			b.ReportMetric(r.Fp, "MGrid_Fp")
		}
	}
}

// --- Section 8 worked example ---------------------------------------------

func BenchmarkSection8(b *testing.B) {
	var rows []bench.Section8Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Section8(1500, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.System == "boostFPP(q=3,b=19)" {
			b.ReportMetric(r.MeasuredFp, "boostFPP_Fp")
		}
	}
}

// --- Figures ---------------------------------------------------------------

func BenchmarkFigure1MGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure1MGrid(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2RT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure2RT(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3MPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure3MPath(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Bounds and sweeps -------------------------------------------------------

func BenchmarkLoadVsLowerBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.LoadVsLowerBound(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrashVsLowerBound(b *testing.B) {
	// Exact F_p vs Propositions 4.3–4.5 on an enumerable masking system.
	th, err := bqs.NewMaskingThreshold(13, 3)
	if err != nil {
		b.Fatal(err)
	}
	ex, err := th.Enumerate(0)
	if err != nil {
		b.Fatal(err)
	}
	ps := []float64{0.05, 0.1, 0.2, 0.3, 0.4}
	for i := 0; i < b.N; i++ {
		for _, p := range ps {
			fp, err := bqs.CrashProbabilityExact(ex, p)
			if err != nil {
				b.Fatal(err)
			}
			if fp < bqs.CrashLowerBoundMT(ex.MinTransversal(), p) {
				b.Fatal("Prop 4.3 violated")
			}
			if fp < bqs.CrashLowerBoundMasking(ex.MinQuorumSize(), 3, p) {
				b.Fatal("Prop 4.4 violated")
			}
			if bqs.Prop45Applies(ex) && fp < bqs.CrashLowerBoundB(3, p) {
				b.Fatal("Prop 4.5 violated")
			}
		}
	}
}

func BenchmarkMGridLoad(b *testing.B) {
	// Proposition 5.2: empirical load of the M-Grid strategy vs analytic.
	mg, err := bqs.NewMGrid(32, 15)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var emp float64
	for i := 0; i < b.N; i++ {
		emp = bqs.EmpiricalLoad(mg, 2000, rng)
	}
	b.ReportMetric(emp, "empirical_load")
	b.ReportMetric(mg.Load(), "analytic_load")
}

func BenchmarkMGridCrashGoesToOne(b *testing.B) {
	// Section 5.1: the row bound (and so F_p) escalates with n at fixed p.
	var last float64
	for i := 0; i < b.N; i++ {
		for _, d := range []int{16, 32, 64, 128} {
			mg, err := bqs.NewMGrid(d, 3)
			if err != nil {
				b.Fatal(err)
			}
			last = mg.CrashLowerBoundRows(0.125)
		}
	}
	b.ReportMetric(last, "rowbound_d128")
}

func BenchmarkRTParams(b *testing.B) {
	// Proposition 5.3 parameter algebra across depths.
	for i := 0; i < b.N; i++ {
		for h := 1; h <= 8; h++ {
			rt, err := bqs.NewRT(4, 3, h)
			if err != nil {
				b.Fatal(err)
			}
			_ = rt.MinQuorumSize() + rt.MinIntersection() + rt.MinTransversal()
		}
	}
}

func BenchmarkRTCriticalProbability(b *testing.B) {
	var rows []bench.RTCriticalRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.RTCriticalProbabilities()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.K == 4 && r.L == 3 {
			b.ReportMetric(r.Pc, "RT43_pc")
		}
	}
}

func BenchmarkBoostFPPLoad(b *testing.B) {
	// Proposition 6.2: load ≈ 3/(4q) across q.
	for i := 0; i < b.N; i++ {
		for _, q := range []int{2, 3, 4, 5, 7} {
			bf, err := bqs.NewBoostFPP(q, 5)
			if err != nil {
				b.Fatal(err)
			}
			_ = bf.Load()
		}
	}
}

func BenchmarkBoostFPPCrash(b *testing.B) {
	// Proposition 6.3: exact F_p vs Chernoff bound for p < 1/4.
	bf, err := bqs.NewBoostFPP(3, 19)
	if err != nil {
		b.Fatal(err)
	}
	var fp float64
	for i := 0; i < b.N; i++ {
		for _, p := range []float64{0.05, 0.125, 0.2} {
			v, err := bf.CrashProbability(p)
			if err != nil {
				b.Fatal(err)
			}
			if v > bf.CrashUpperBound(p) {
				b.Fatal("Prop 6.3 inequality (6) violated")
			}
			if p == 0.125 {
				fp = v
			}
		}
	}
	b.ReportMetric(fp, "Fp_at_eighth")
}

func BenchmarkMPathLoad(b *testing.B) {
	mp, err := bqs.NewMPath(32, 15)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var emp float64
	for i := 0; i < b.N; i++ {
		emp = bqs.EmpiricalLoad(mp, 2000, rng)
	}
	b.ReportMetric(emp, "empirical_load")
	b.ReportMetric(mp.Load(), "analytic_load")
}

func BenchmarkMPathCrash(b *testing.B) {
	// Proposition 7.3: Monte Carlo F_p at p approaching 1/2 on a 24×24
	// grid with b = 4 (3 paths per direction).
	mp, err := bqs.NewMPath(24, 4)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var est float64
	for i := 0; i < b.N; i++ {
		mc, err := bqs.CrashProbabilityMC(mp, 0.30, 200, rng)
		if err != nil {
			b.Fatal(err)
		}
		est = mc.Estimate
	}
	b.ReportMetric(est, "Fp_at_0.30")
}

func BenchmarkPercolationCrossing(b *testing.B) {
	// Appendix B: P_p(LR) near the critical probability.
	g, err := lattice.New(24)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	var prob float64
	for i := 0; i < b.N; i++ {
		prob, err = g.CrossingProbability(lattice.LeftRight, 0.45, 1, 100, rng)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(prob, "P_0.45_LR")
}

func BenchmarkComposition(b *testing.B) {
	// Theorem 4.7: parameters of maj3∘maj3∘maj3 built lazily.
	maj, err := bqs.NewMajority(3)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		c2 := bqs.Compose(maj, maj)
		c3 := bqs.Compose(maj, c2)
		if c3.UniverseSize() != 27 || c3.MinQuorumSize() != 8 || c3.MinTransversal() != 8 {
			b.Fatal("Theorem 4.7 algebra broken")
		}
	}
}

func BenchmarkResilienceLoadTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.ResilienceLoadTradeoff()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Holds {
				b.Fatalf("%s violates f ≤ nL", r.System)
			}
		}
	}
}

// --- Micro-benchmarks of the core machinery ---------------------------------

func BenchmarkSelectQuorumThreshold1021(b *testing.B) {
	th, err := bqs.NewMaskingThreshold(1021, 255)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	dead := bqs.SetOf(1, 100, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := th.SelectQuorum(rng, dead); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectQuorumMGrid32(b *testing.B) {
	mg, err := bqs.NewMGrid(32, 15)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	dead := bqs.SetOf(5, 77, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mg.SelectQuorum(rng, dead); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectQuorumMPath32(b *testing.B) {
	mp, err := bqs.NewMPath(32, 7)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	dead := bqs.SetOf(5, 77, 300, 600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mp.SelectQuorum(rng, dead); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectQuorumBoostFPP(b *testing.B) {
	bf, err := bqs.NewBoostFPP(3, 19)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	dead := bqs.SetOf(3, 100, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bf.SelectQuorum(rng, dead); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadLPFano(b *testing.B) {
	fpp, err := bqs.NewFPP(2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := bqs.Load(fpp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactCrashFano(b *testing.B) {
	fpp, err := bqs.NewFPP(2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bqs.CrashProbabilityExact(fpp, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrashMCThreshold(b *testing.B) {
	th, err := bqs.NewMaskingThreshold(101, 25)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := measures.CrashProbabilityMC(th, 0.125, 100, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegisterWriteRead(b *testing.B) {
	sys, err := bqs.NewMaskingThreshold(21, 5)
	if err != nil {
		b.Fatal(err)
	}
	cluster, err := bqs.NewCluster(sys, 5, bqs.WithSeed(10))
	if err != nil {
		b.Fatal(err)
	}
	if err := cluster.InjectFault(bqs.ByzantineFabricate, 0, 7, 14); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	w := cluster.NewClient(1)
	r := cluster.NewClient(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(ctx, "bench"); err != nil {
			b.Fatal(err)
		}
		if _, err := r.Read(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterThroughput is the perf baseline for the concurrent
// quorum-access engine: write+read pairs driven by one client
// (sequential) vs one client per GOMAXPROCS goroutine (parallel), over a
// fault-free Threshold and M-Path cluster. Future PRs compare against
// these numbers.
func BenchmarkClusterThroughput(b *testing.B) {
	build := func(b *testing.B, kind string) (bqs.System, int) {
		b.Helper()
		switch kind {
		case "Threshold":
			sys, err := bqs.NewMaskingThreshold(21, 5)
			if err != nil {
				b.Fatal(err)
			}
			return sys, 5
		case "MPath":
			sys, err := bqs.NewMPath(10, 3)
			if err != nil {
				b.Fatal(err)
			}
			return sys, 3
		default:
			b.Fatalf("unknown system %q", kind)
			return nil, 0
		}
	}
	ctx := context.Background()
	for _, kind := range []string{"Threshold", "MPath"} {
		b.Run(kind+"/sequential", func(b *testing.B) {
			sys, bound := build(b, kind)
			cluster, err := bqs.NewCluster(sys, bound, bqs.WithSeed(20))
			if err != nil {
				b.Fatal(err)
			}
			cl := cluster.NewClient(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cl.Write(ctx, "bench"); err != nil {
					b.Fatal(err)
				}
				if _, err := cl.Read(ctx); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cluster.PeakLoad(), "peak_load")
		})
		b.Run(kind+"/parallel", func(b *testing.B) {
			sys, bound := build(b, kind)
			cluster, err := bqs.NewCluster(sys, bound, bqs.WithSeed(21))
			if err != nil {
				b.Fatal(err)
			}
			var ids atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				cl := cluster.NewClient(int(ids.Add(1)))
				for pb.Next() {
					if err := cl.Write(ctx, "bench"); err != nil {
						b.Error(err)
						return
					}
					if _, err := cl.Read(ctx); err != nil && !errors.Is(err, bqs.ErrNoCandidate) {
						b.Error(err)
						return
					}
				}
			})
			b.ReportMetric(cluster.PeakLoad(), "peak_load")
		})
	}
}

// BenchmarkWireThroughput compares the in-memory transport against the
// TCP wire transport on loopback, with the identical Threshold(21,5)
// cluster and write+read workload: the gap is the cost of real sockets
// (syscalls, framing, scheduling), the floor a deployed cluster pays
// before any actual network latency. Run with:
//
//	go test -bench BenchmarkWireThroughput -cpu 1,4,8
func BenchmarkWireThroughput(b *testing.B) {
	const bound = 5
	newSys := func(b *testing.B) bqs.System {
		b.Helper()
		sys, err := bqs.NewMaskingThreshold(21, bound)
		if err != nil {
			b.Fatal(err)
		}
		return sys
	}
	ctx := context.Background()
	workload := func(b *testing.B, cluster *bqs.Cluster) {
		b.Helper()
		var ids atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			cl := cluster.NewClient(int(ids.Add(1)))
			for pb.Next() {
				if err := cl.Write(ctx, "bench"); err != nil {
					b.Error(err)
					return
				}
				if _, err := cl.Read(ctx); err != nil && !errors.Is(err, bqs.ErrNoCandidate) {
					b.Error(err)
					return
				}
			}
		})
		b.ReportMetric(cluster.PeakLoad(), "peak_load")
	}

	b.Run("InMemory", func(b *testing.B) {
		cluster, err := bqs.NewCluster(newSys(b), bound, bqs.WithSeed(30))
		if err != nil {
			b.Fatal(err)
		}
		workload(b, cluster)
	})

	b.Run("TCPLoopback", func(b *testing.B) {
		sys := newSys(b)
		replicas := make(map[int]*bqs.Server, sys.UniverseSize())
		routes := make(map[int]string, sys.UniverseSize())
		for i := 0; i < sys.UniverseSize(); i++ {
			replicas[i] = bqs.NewServer(i)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv := bqs.NewWireServer(replicas)
		go srv.Serve(lis)
		defer srv.Close()
		for i := range replicas {
			routes[i] = lis.Addr().String()
		}
		tr, err := bqs.DialWire(routes)
		if err != nil {
			b.Fatal(err)
		}
		defer tr.Close()
		cluster, err := bqs.NewCluster(sys, bound, bqs.WithSeed(31),
			bqs.WithTransport(func([]*bqs.Server) bqs.Transport { return tr }))
		if err != nil {
			b.Fatal(err)
		}
		workload(b, cluster)
	})
}

// BenchmarkSessionBatched measures what the Session batcher buys: one
// client pipelines `batch` keyed operations at a time over a 64-key
// space, so the probes of concurrent operations coalesce into batched
// frames (per shard over TCP). batch=1 is the unbatched baseline — same
// session machinery, every probe its own frame — making the ratio a pure
// measurement of frame coalescing. The TCPLoopback variant is the
// acceptance number: batch=32 must beat batch=1 by ≥1.5× ops/s (see
// EXPERIMENTS.md).
func BenchmarkSessionBatched(b *testing.B) {
	ctx := context.Background()
	newSys := func(b *testing.B) bqs.System {
		b.Helper()
		sys, err := bqs.NewMGrid(4, 1)
		if err != nil {
			b.Fatal(err)
		}
		return sys
	}
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%04d", i)
	}
	workload := func(b *testing.B, cluster *bqs.Cluster, batch int) {
		b.Helper()
		sess := cluster.NewClient(1).NewSession(bqs.WithSessionBatch(batch))
		defer sess.Close()
		wfs := make([]*bqs.WriteFuture, 0, batch)
		rfs := make([]*bqs.ReadFuture, 0, batch)
		b.ResetTimer()
		for issued := 0; issued < b.N; {
			n := batch
			if b.N-issued < n {
				n = b.N - issued
			}
			wfs, rfs = wfs[:0], rfs[:0]
			for j := 0; j < n; j++ {
				key := keys[(issued+j)%len(keys)]
				if (issued+j)%2 == 0 {
					wfs = append(wfs, sess.WriteAsync(ctx, key, "bench"))
				} else {
					rfs = append(rfs, sess.ReadAsync(ctx, key))
				}
			}
			issued += n
			for _, f := range wfs {
				if err := f.Wait(); err != nil {
					b.Fatal(err)
				}
			}
			for _, f := range rfs {
				if _, err := f.Wait(); err != nil && !errors.Is(err, bqs.ErrNoCandidate) {
					b.Fatal(err)
				}
			}
		}
	}
	for _, batch := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("InMemory/batch=%d", batch), func(b *testing.B) {
			cluster, err := bqs.NewCluster(newSys(b), 1, bqs.WithSeed(40))
			if err != nil {
				b.Fatal(err)
			}
			workload(b, cluster, batch)
		})
	}
	for _, batch := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("TCPLoopback/batch=%d", batch), func(b *testing.B) {
			sys := newSys(b)
			n := sys.UniverseSize()
			routes := make(map[int]string, n)
			// Two shards, so batching also exercises the per-address
			// grouping (one frame per shard per flush).
			for _, ids := range [][]int{{0, n / 2}, {n / 2, n}} {
				replicas := make(map[int]*bqs.Server)
				for i := ids[0]; i < ids[1]; i++ {
					replicas[i] = bqs.NewServer(i)
				}
				lis, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				srv := bqs.NewWireServer(replicas)
				go srv.Serve(lis)
				defer srv.Close()
				for i := ids[0]; i < ids[1]; i++ {
					routes[i] = lis.Addr().String()
				}
			}
			tr, err := bqs.DialWire(routes)
			if err != nil {
				b.Fatal(err)
			}
			defer tr.Close()
			cluster, err := bqs.NewCluster(sys, 1, bqs.WithSeed(41),
				bqs.WithTransport(func([]*bqs.Server) bqs.Transport { return tr }))
			if err != nil {
				b.Fatal(err)
			}
			workload(b, cluster, batch)
		})
	}
}

// --- Extensions beyond the paper's minimum ----------------------------------

func BenchmarkBoostingTable(b *testing.B) {
	// §6 boosting applied to majority, NW-grid, FPP and crumbling wall.
	for i := 0; i < b.N; i++ {
		rows, err := bench.BoostingTable(0.05, 300, 9)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Masks < r.B {
				b.Fatalf("%s: boosting failed to mask b=%d", r.Input, r.B)
			}
		}
	}
}

func BenchmarkStrategyAblation(b *testing.B) {
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.StrategyAblation(2000, 11)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		b.ReportMetric(rows[len(rows)-1].Penalty, "biased_penalty")
	}
}

func BenchmarkMPathEdgeAblation(b *testing.B) {
	// Square-lattice edge variant (end of §7): load ratio vs triangular.
	vertex, err := bqs.NewMPath(17, 4)
	if err != nil {
		b.Fatal(err)
	}
	edge, err := bqs.NewMPathEdge(13, 4)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	dead := bqs.NewSet(edge.UniverseSize())
	for i := 0; i < b.N; i++ {
		if _, err := edge.SelectQuorum(rng, dead); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(edge.Load()/vertex.Load(), "edge_vs_vertex_load")
}

func BenchmarkProbMaskingEpsilon(b *testing.B) {
	// [MRWW98] extension: ε-masking beats the f ≤ nL tradeoff.
	p, err := bqs.NewProbMasking(1024, 160, 5)
	if err != nil {
		b.Fatal(err)
	}
	var eps float64
	for i := 0; i < b.N; i++ {
		eps = p.EpsilonMasking()
	}
	breaks, _ := p.BreaksTradeoff()
	if !breaks {
		b.Fatal("probabilistic system should break f ≤ nL")
	}
	b.ReportMetric(eps, "epsilon")
}

func BenchmarkCrashPolynomial(b *testing.B) {
	wall, err := bqs.NewCrumblingWall([]int{1, 2, 3, 4}, 0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		counts, err := bqs.CrashPolynomial(wall)
		if err != nil {
			b.Fatal(err)
		}
		if bqs.EvalCrashPolynomial(counts, 0.2) <= 0 {
			b.Fatal("polynomial should be positive")
		}
	}
}
