package bqs_test

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"bqs"
	"bqs/internal/harness"
)

// scrapeMetrics GETs /metrics from a live telemetry endpoint and parses
// the Prometheus text into name{labels} → value. It goes through HTTP on
// purpose: these tests certify what an external scraper sees, not what
// the Go API reports.
func scrapeMetrics(t *testing.T, addr string) map[string]float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestLiveLoadGaugeTracksLPUnderChurn is the first telemetry acceptance
// check: run churn (a crash and a recovery mid-workload) against an
// LP-strategy cluster, then measure steady-state traffic while scraping
// /metrics — the max per-server load gauge seen by the scraper must land
// within 10% of the strategy-load gauge on the same page. This certifies
// the whole path: live counters → GaugeFunc → Prometheus text → L(Q).
func TestLiveLoadGaugeTracksLPUnderChurn(t *testing.T) {
	sys, err := bqs.NewMGrid(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := bqs.NewMetricsRegistry()
	cluster, err := bqs.NewCluster(sys, 1, bqs.WithSeed(7),
		bqs.WithOptimalStrategy(), bqs.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := bqs.ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	// Churn phase: server 0 is crashed at t=0 and recovers at 30ms while
	// a duration-bounded workload (which therefore outlives the schedule)
	// runs — exercising suspicion, retries and rehabilitation with the
	// telemetry live.
	schedule, err := bqs.ParseFaultSchedule("0ms:0:crashed,30ms:0:correct")
	if err != nil {
		t.Fatal(err)
	}
	driver := harness.StartChurn(cluster, schedule, 10*time.Millisecond, reg)
	harness.Run(cluster, harness.Workload{
		Clients: 4, Duration: 80 * time.Millisecond,
		SuspicionTTL: 10 * time.Millisecond, Timeout: time.Second, Seed: 7,
	})
	if err := driver.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"crashed", "correct"} {
		if v, ok := reg.Value("bqs_churn_flips_total", "to", want); !ok || v != 1 {
			t.Fatalf("bqs_churn_flips_total{to=%q} = %v, %v; want 1", want, v, ok)
		}
	}
	if crashed, _ := cluster.FaultCounts(); crashed != 0 {
		t.Fatalf("%d servers still crashed after the recovery flip", crashed)
	}

	// Measurement phase: reset the profile so the churn transient does not
	// pollute the steady-state load, then drive traffic while a scraper
	// polls the endpoint mid-run.
	cluster.ResetLoadProfile()
	done := make(chan harness.Counters, 1)
	go func() {
		done <- harness.Run(cluster, harness.Workload{Clients: 8, Ops: 100, Seed: 8})
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		mid := scrapeMetrics(t, ms.Addr())
		if mid["bqs_cluster_phases_total"] > 0 {
			if _, ok := mid[`bqs_server_load{server="0"}`]; !ok {
				t.Fatal("mid-run scrape has phases but no per-server load series")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no phases observed via /metrics within 10s")
		}
	}
	c := <-done
	if c.Failures != 0 || c.Violations != 0 {
		t.Fatalf("measurement run not clean: %+v", c)
	}

	final := scrapeMetrics(t, ms.Addr())
	lp, ok := final["bqs_cluster_strategy_load"]
	if !ok {
		t.Fatal("scrape missing bqs_cluster_strategy_load")
	}
	maxLoad, servers := 0.0, 0
	for i := 0; i < sys.UniverseSize(); i++ {
		v, ok := final[fmt.Sprintf(`bqs_server_load{server="%d"}`, i)]
		if !ok {
			t.Fatalf("scrape missing bqs_server_load for server %d", i)
		}
		servers++
		if v > maxLoad {
			maxLoad = v
		}
	}
	if servers != sys.UniverseSize() {
		t.Fatalf("scraped %d load gauges, want %d", servers, sys.UniverseSize())
	}
	if dev := math.Abs(maxLoad/lp - 1); dev > 0.10 {
		t.Fatalf("scraped max server load %.4f is %.1f%% from the LP gauge %.4f (outside 10%%)",
			maxLoad, 100*dev, lp)
	}
	// The scraped peak and the Go API's peak are the same atomics.
	if peak := final["bqs_cluster_peak_load"]; math.Abs(peak-cluster.PeakLoad()) > 1e-9 {
		t.Fatalf("scraped peak %.6f != PeakLoad() %.6f", peak, cluster.PeakLoad())
	}
}

// TestCrashRateGaugeMatchesExact is the second telemetry acceptance
// check: after a 2000-epoch availability experiment the live
// bqs_system_crash_rate gauge must sit within 3 binomial standard
// deviations of CrashProbabilityExact, and the crash-epoch counter must
// agree exactly with the experiment's own tally — the Definition 3.10
// loop observed entirely through telemetry.
func TestCrashRateGaugeMatchesExact(t *testing.T) {
	sys, err := bqs.NewMGrid(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := bqs.NewMetricsRegistry()
	ms, err := bqs.ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	cfg := harness.AvailabilityConfig{P: 0.1, Epochs: 2000, Seed: 11, MCTrials: 1000, Registry: reg}
	res, err := harness.RunAvailability(sys, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ExactOK {
		t.Fatal("exact F_p unavailable for MGrid(4,1) — enumeration regression")
	}

	m := scrapeMetrics(t, ms.Addr())
	if got := m["bqs_system_epochs_total"]; got != float64(cfg.Epochs) {
		t.Fatalf("bqs_system_epochs_total = %v, want %d", got, cfg.Epochs)
	}
	if got := m["bqs_system_crash_epochs_total"]; got != float64(res.Crashes) {
		t.Fatalf("bqs_system_crash_epochs_total = %v, want %d (the experiment's own tally)",
			got, res.Crashes)
	}
	rate := m["bqs_system_crash_rate"]
	if math.Abs(rate-res.Rate) > 1e-12 {
		t.Fatalf("crash-rate gauge %v != experiment rate %v", rate, res.Rate)
	}
	sigma := math.Sqrt(res.Exact * (1 - res.Exact) / float64(cfg.Epochs))
	if math.Abs(rate-res.Exact) > 3*sigma {
		t.Fatalf("crash-rate gauge %.4f outside 3σ of exact F_p %.4f (σ=%.4f)",
			rate, res.Exact, sigma)
	}
	if got := m["bqs_system_exact_crash_rate"]; got != res.Exact {
		t.Fatalf("bqs_system_exact_crash_rate = %v, want %v", got, res.Exact)
	}
}

// promHistogram collects one scraped histogram's (le, cumulative count)
// pairs, sorted by le with +Inf last.
type promHistogram struct {
	les  []float64
	cums []float64
}

func scrapeHistogram(m map[string]float64, name string) promHistogram {
	var h promHistogram
	prefix := name + `_bucket{le="`
	for k, v := range m {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		leStr := strings.TrimSuffix(strings.TrimPrefix(k, prefix), `"}`)
		le := math.Inf(1)
		if leStr != "+Inf" {
			var err error
			if le, err = strconv.ParseFloat(leStr, 64); err != nil {
				continue
			}
		}
		h.les = append(h.les, le)
		h.cums = append(h.cums, v)
	}
	sort.Sort(&h)
	return h
}

func (h *promHistogram) Len() int { return len(h.les) }
func (h *promHistogram) Swap(i, j int) {
	h.les[i], h.les[j] = h.les[j], h.les[i]
	h.cums[i], h.cums[j] = h.cums[j], h.cums[i]
}
func (h *promHistogram) Less(i, j int) bool { return h.les[i] < h.les[j] }

// TestReportQuantilesAgreeWithScrape is the quantile-agreement
// regression test behind the reservoir deletion: the p50/p99 a
// BenchSnapshot reports and the quantile recomputed from the scraped
// Prometheus buckets must be the same number — one data source, whether
// you read the report or the endpoint.
func TestReportQuantilesAgreeWithScrape(t *testing.T) {
	sys, err := bqs.NewMaskingThreshold(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := bqs.NewMetricsRegistry()
	cluster, err := bqs.NewCluster(sys, 1, bqs.WithSeed(3), bqs.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := bqs.ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	c := harness.Run(cluster, harness.Workload{Clients: 4, Ops: 100, Keys: 8, Seed: 3})
	if c.Failures != 0 {
		t.Fatalf("run not clean: %+v", c)
	}
	if c.ReadLatency == nil || c.WriteLatency == nil {
		t.Fatal("instrumented run returned nil latency histograms")
	}
	if got := c.ReadLatency.Count() + c.WriteLatency.Count(); got != c.Succeeded() {
		t.Fatalf("histograms hold %d samples, want %d successful ops", got, c.Succeeded())
	}

	m := scrapeMetrics(t, ms.Addr())
	read := scrapeHistogram(m, "bqs_client_read_seconds")
	write := scrapeHistogram(m, "bqs_client_write_seconds")
	if read.Len() == 0 || read.Len() != write.Len() {
		t.Fatalf("scraped bucket counts: read %d, write %d", read.Len(), write.Len())
	}
	// Merge the two scraped histograms and extract the quantile exactly
	// as obs.QuantileOf defines it: the upper bound of the bucket holding
	// the rank-⌈q·n⌉ sample, overflow clamped to the last finite bound.
	quantile := func(q float64) float64 {
		total := read.cums[read.Len()-1] + write.cums[write.Len()-1]
		rank := math.Ceil(q * total)
		if rank < 1 {
			rank = 1
		}
		for i := range read.les {
			if read.cums[i]+write.cums[i] >= rank {
				if math.IsInf(read.les[i], 1) {
					return read.les[i-1]
				}
				return read.les[i]
			}
		}
		return read.les[read.Len()-2]
	}
	for _, q := range []float64{0.50, 0.95, 0.99} {
		fromScrape := quantile(q)
		fromReport := c.LatencyQuantile(q).Seconds()
		// The scraped le string round-trips its float64 exactly (strconv
		// 'g' with precision -1); the report side goes through a
		// time.Duration, which truncates to whole nanoseconds — so the two
		// must agree to within 1ns, not merely within a bucket.
		if math.Abs(fromScrape-fromReport) > 1e-9 {
			t.Fatalf("q=%v: scraped %v != reported %v — report and endpoint disagree",
				q, fromScrape, fromReport)
		}
	}
	// And the snapshot the CI trajectory stores carries the same numbers.
	sum := harness.Report(cluster, sys, 1, c)
	snap := harness.Snapshot("telemetry-test", sys, 1, "memory", harness.Workload{}, c, sum)
	if want := float64(c.LatencyQuantile(0.50)) / float64(time.Millisecond); snap.P50Ms != want {
		t.Fatalf("snapshot p50 %v != counters quantile %v", snap.P50Ms, want)
	}
	if want := float64(c.LatencyQuantile(0.99)) / float64(time.Millisecond); snap.P99Ms != want {
		t.Fatalf("snapshot p99 %v != counters quantile %v", snap.P99Ms, want)
	}
}

// TestMetricsOptional pins the Noop contract at the facade level: a
// cluster built without WithMetrics has a nil Registry, harness counters
// carry nil histograms, and quantiles read 0 — no telemetry, no cost, no
// crashes.
func TestMetricsOptional(t *testing.T) {
	sys, err := bqs.NewMaskingThreshold(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := bqs.NewCluster(sys, 1, bqs.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if cluster.Registry() != nil {
		t.Fatal("un-instrumented cluster has a registry")
	}
	c := harness.Run(cluster, harness.Workload{Clients: 2, Ops: 20, Seed: 1})
	if c.Failures != 0 {
		t.Fatalf("run not clean: %+v", c)
	}
	if c.ReadLatency != nil || c.WriteLatency != nil {
		t.Fatal("un-instrumented run returned histograms")
	}
	if q := c.LatencyQuantile(0.5); q != 0 {
		t.Fatalf("un-instrumented quantile = %v, want 0", q)
	}
}
