package bqs

import (
	"math/rand"
	"time"

	"bqs/internal/bitset"
	"bqs/internal/compose"
	"bqs/internal/core"
	"bqs/internal/measures"
	"bqs/internal/obs"
	"bqs/internal/projective"
	"bqs/internal/reconfig"
	"bqs/internal/sim"
	"bqs/internal/store"
	"bqs/internal/systems"
	"bqs/internal/wire"
)

// Core model types, re-exported from the internal implementation.
type (
	// Set is a set of server indices; quorums and failure patterns are Sets.
	Set = bitset.Set
	// System is the minimal quorum-system interface (selection under a
	// failure pattern).
	System = core.System
	// Sampler is a System carrying a load-balancing access strategy
	// (Definition 3.8).
	Sampler = core.Sampler
	// Enumerable is a System whose quorum list is materialized.
	Enumerable = core.Enumerable
	// Enumerator is an implicit System that can materialize its quorum
	// list on demand (Threshold, Grid, MGrid, RT).
	Enumerator = core.Enumerator
	// Picker is the quorum-selection seam live clusters drive: uniform
	// survivor selection by default, strategy-backed sampling under
	// WithStrategy/WithOptimalStrategy.
	Picker = core.Picker
	// Parameterized exposes c(Q), IS(Q) and MT(Q).
	Parameterized = core.Parameterized
	// Masking is a b-masking System (Definition 3.5).
	Masking = core.Masking
	// ExplicitSystem is a materialized quorum system with exact analysis.
	ExplicitSystem = core.ExplicitSystem
	// Strategy is an access strategy over an explicit system's quorums.
	Strategy = core.Strategy
	// Composite is the lazy composition S∘R (Definition 4.6).
	Composite = compose.Composite
	// MCResult is a Monte Carlo crash-probability estimate.
	MCResult = measures.MCResult
	// FailureModel is the heterogeneous, correlated crash model: a
	// per-server probability vector plus correlated failure domains.
	FailureModel = measures.FailureModel
	// Domain is one correlated failure domain of a FailureModel (rack,
	// power feed, availability zone): all members crash together.
	Domain = measures.Domain

	// Threshold is the ℓ-of-n system (Table 2 baseline / RT block).
	Threshold = systems.Threshold
	// Grid is the [MR98a] masking grid baseline.
	Grid = systems.Grid
	// MGrid is the multi-grid construction of §5.1.
	MGrid = systems.MGrid
	// RT is the recursive threshold construction of §5.2.
	RT = systems.RT
	// BoostFPP is the boosted finite projective plane of §6.
	BoostFPP = systems.BoostFPP
	// MPath is the multi-path construction of §7.
	MPath = systems.MPath
	// MPathEdge is the square-lattice bond variant mentioned at the end
	// of §7 (servers on edges, dual-path TB quorums).
	MPathEdge = systems.MPathEdge
	// ProbMasking is the probabilistic masking system of [MRWW98] cited
	// in §8 as the way past the f ≤ nL tradeoff.
	ProbMasking = systems.ProbMasking

	// Cluster is a simulated server fleet behind a masking quorum system,
	// safe for any number of concurrent clients.
	Cluster = sim.Cluster
	// Client reads and writes the replicated variable via quorums; its
	// context-aware operations fan probes out to quorum members in
	// parallel and honor deadlines and cancellation.
	Client = sim.Client
	// DisseminationClient runs the [MR98a] self-verifying-data protocol,
	// which needs only IS ≥ b+1.
	DisseminationClient = sim.DisseminationClient
	// Authenticator simulates the signature scheme dissemination relies on.
	Authenticator = sim.Authenticator
	// Behavior is a server fault mode for injection.
	Behavior = sim.Behavior
	// TaggedValue is a register value with its write timestamp.
	TaggedValue = sim.TaggedValue
	// Timestamp orders writes: lexicographic on (Seq, Writer).
	Timestamp = sim.Timestamp
	// Server is one replica of the shared variable.
	Server = sim.Server
	// ClusterOption configures NewCluster (seed, loss, latency, transport).
	ClusterOption = sim.Option
	// Transport delivers protocol messages to servers; implement it to run
	// the protocol over a custom message layer.
	Transport = sim.Transport
	// Request is a protocol message addressed to one server; Key names
	// the register it targets.
	Request = sim.Request
	// Response is a server's answer to a Request.
	Response = sim.Response
	// Op identifies a protocol message type.
	Op = sim.Op
	// BatchItem is one operation of a batched transport frame.
	BatchItem = sim.BatchItem
	// BatchTransport is the optional whole-frame fast path a Transport
	// can offer the session batcher.
	BatchTransport = sim.BatchTransport
	// BatchGrouper is the optional coalescing hint a Transport can give
	// the session batcher (probes to one shard share a frame).
	BatchGrouper = sim.BatchGrouper
	// Session is the asynchronous, batching face of a client: futures
	// plus per-destination frame coalescing; see Client.NewSession.
	Session = sim.Session
	// SessionOption configures NewSession (batch size, linger).
	SessionOption = sim.SessionOption
	// ReadFuture is the pending result of Session.ReadAsync.
	ReadFuture = sim.ReadFuture
	// WriteFuture is the pending result of Session.WriteAsync.
	WriteFuture = sim.WriteFuture

	// FaultEvent is one entry of a fault timeline: at offset At, server
	// Server switches to Behavior.
	FaultEvent = sim.FaultEvent
	// FaultSchedule is a validated, time-sorted fault timeline — the
	// deterministic core of the churn engine.
	FaultSchedule = sim.FaultSchedule
	// ChurnConfig is the seeded stochastic churn model (exponential
	// up/down alternation per server); its Schedule method pre-generates a
	// reproducible FaultSchedule.
	ChurnConfig = sim.ChurnConfig
	// FaultController replays a FaultSchedule against a Flipper in real
	// time while a workload runs.
	FaultController = sim.FaultController
	// Flipper applies behavior flips to servers: Cluster implements it
	// in-memory, WireClient over TCP (control frames).
	Flipper = sim.Flipper
	// ChurnGroup is one heterogeneous slice of the churn model: rate
	// overrides for its servers, or — when Correlated — a failure domain
	// that flips all its members together.
	ChurnGroup = sim.ChurnGroup
	// Adversary corrupts up to B servers through a Flipper, re-choosing
	// victims live per its scheduling strategy.
	Adversary = sim.Adversary
	// AdversaryConfig shapes an Adversary (kind, budget, behavior,
	// re-targeting interval).
	AdversaryConfig = sim.AdversaryConfig
	// AdversaryKind names a victim-selection strategy: random, targeted
	// (heaviest-loaded servers), or timing (phase-keyed behavior flips).
	AdversaryKind = sim.AdversaryKind
	// LoadSource exposes live per-server access frequencies; Cluster
	// satisfies it, and the targeted adversary re-aims off it.
	LoadSource = sim.LoadSource

	// Store is the pluggable storage engine behind a Server: a keyed map
	// of timestamped records with last-writer-wins merge. NewMemStore
	// returns the volatile engine, OpenDiskStore the durable WAL +
	// snapshot engine with true crash-recovery.
	Store = store.Store
	// StoreRecord is one durable register version: key, value and the
	// (Seq, Writer) timestamp that orders it.
	StoreRecord = store.Record
	// DiskOption configures OpenDiskStore (fsync policy, snapshot
	// threshold).
	DiskOption = store.DiskOption
	// DiskStore is the durable engine: an append-only CRC-checksummed WAL
	// with group commit, periodic snapshots, and recovery that tolerates a
	// torn tail.
	DiskStore = store.Disk
	// RecoveryStats describes what a DiskStore replayed at open.
	RecoveryStats = store.RecoveryStats
	// ServerOption configures NewServer (durable storage).
	ServerOption = sim.ServerOption

	// WireServer is a TCP daemon hosting a shard of sim servers; see
	// NewWireServer.
	WireServer = wire.Server
	// WireClient is a Transport that carries probes over TCP with
	// connection pooling, request pipelining and automatic reconnect; see
	// DialWire.
	WireClient = wire.Client
	// WireDialOption configures DialWire.
	WireDialOption = wire.DialOption

	// ReconfigRecord is one epoch's configuration: the quorum
	// construction, universe size and masking bound a cluster runs.
	// Cluster.Reconfigure installs one; epoch-aware wire clients and
	// daemons agree on the current one through the epoch gate.
	ReconfigRecord = reconfig.Record
	// ReconfigReport summarizes a completed Cluster.Reconfigure: the
	// record installed, drain and total durations, keys handed off.
	ReconfigReport = sim.ReconfigReport
	// ReconfigInstaller is the transport seam Cluster.Reconfigure uses to
	// push a record to remote shards; WireClient implements it when
	// dialed with WithWireEpochs.
	ReconfigInstaller = reconfig.Installer
	// ReconfigPhase names the stations of the two-phase install
	// (Idle → Proposed → Draining → CutOver → Retired), as exposed by the
	// bqs_reconfig_phase gauge.
	ReconfigPhase = reconfig.Phase
	// WireReconfigFrame is the decoded payload of a wire reconfig control
	// frame, for custom tooling over the epoch plane.
	WireReconfigFrame = wire.ReconfigFrame
)

// Sentinel errors.
var (
	// ErrNoLiveQuorum reports that every quorum intersects the failed set.
	ErrNoLiveQuorum = core.ErrNoLiveQuorum
	// ErrNotEnumerable reports a system that can neither list nor
	// materialize its quorums (required by WithStrategy and
	// WithOptimalStrategy).
	ErrNotEnumerable = core.ErrNotEnumerable
	// ErrNoCandidate reports a read that found no value vouched by b+1
	// servers (possible under concurrency or excessive faults).
	ErrNoCandidate = sim.ErrNoCandidate
	// ErrRetriesExhausted reports that live quorums kept containing
	// unresponsive servers beyond the client's retry budget.
	ErrRetriesExhausted = sim.ErrRetriesExhausted
	// ErrSessionClosed reports a session operation issued after Close.
	ErrSessionClosed = sim.ErrSessionClosed
	// ErrWireServerClosed is returned by WireServer.Serve after Shutdown
	// or Close.
	ErrWireServerClosed = wire.ErrServerClosed
)

// Server fault modes for Cluster.InjectFault.
const (
	Correct             = sim.Correct
	Crashed             = sim.Crashed
	ByzantineFabricate  = sim.ByzantineFabricate
	ByzantineStale      = sim.ByzantineStale
	ByzantineEquivocate = sim.ByzantineEquivocate
	// Restart is the kill-and-recover transition: crash the server, run
	// its store's crash-recovery path (Store.Reopen), and return it to
	// Correct — or leave it Crashed if recovery fails. A server without a
	// durable store restarts with amnesia.
	Restart = sim.Restart
)

// Adversary scheduling strategies for NewAdversary.
const (
	// AdversaryRandom corrupts a fresh uniform b-subset each tick — the
	// oblivious baseline.
	AdversaryRandom = sim.AdversaryRandom
	// AdversaryTargeted corrupts the servers carrying the most live
	// access weight (Cluster.LoadProfile) — the worst-case adversary the
	// availability analysis must survive.
	AdversaryTargeted = sim.AdversaryTargeted
	// AdversaryTiming holds its victims but flips their behavior between
	// ByzantineStale and ByzantineEquivocate keyed to the protocol phase.
	AdversaryTiming = sim.AdversaryTiming
)

// Protocol message types, for custom Transport implementations.
const (
	OpReadTimestamps = sim.OpReadTimestamps
	OpRead           = sim.OpRead
	OpWrite          = sim.OpWrite
)

// Keyed data plane constants.
const (
	// DefaultKey is the register the single-object Client.Read and
	// Client.Write operate on; the keyed API is a superset of that
	// original data plane.
	DefaultKey = sim.DefaultKey
	// DefaultSessionBatch is the frame-size flush threshold NewSession
	// uses unless WithSessionBatch overrides it.
	DefaultSessionBatch = sim.DefaultSessionBatch
	// DefaultSessionLinger is the frame linger NewSession uses unless
	// WithSessionLinger overrides it.
	DefaultSessionLinger = sim.DefaultSessionLinger
	// WireProtoVersion is the highest wire protocol version this build
	// speaks (2: keyed, batched frames with hello negotiation).
	WireProtoVersion = wire.ProtoVersion
)

// WithSessionBatch sets how many probes a session frame holds before it
// flushes; 1 disables coalescing (the unbatched baseline).
func WithSessionBatch(n int) SessionOption { return sim.WithSessionBatch(n) }

// WithSessionLinger sets how long a non-full session frame waits for
// company before flushing; 0 flushes every probe immediately.
func WithSessionLinger(d time.Duration) SessionOption { return sim.WithSessionLinger(d) }

// NewSet returns an empty Set sized for a universe of n servers.
func NewSet(n int) Set { return bitset.New(n) }

// SetOf returns a Set holding the given server indices.
func SetOf(elems ...int) Set { return bitset.FromSlice(elems) }

// NewExplicit builds and verifies an explicit quorum system
// (Definition 3.1) over the universe {0,…,n−1}.
func NewExplicit(name string, n int, quorums []Set) (*ExplicitSystem, error) {
	return core.NewExplicit(name, n, quorums)
}

// NewThreshold returns the ℓ-of-n threshold system (requires 2ℓ > n).
func NewThreshold(n, l int) (*Threshold, error) { return systems.NewThreshold(n, l) }

// NewMaskingThreshold returns the b-masking Threshold of [MR98a]: quorums
// of size ⌈(n+2b+1)/2⌉ over n ≥ 4b+1 servers.
func NewMaskingThreshold(n, b int) (*Threshold, error) { return systems.NewMaskingThreshold(n, b) }

// NewMajority returns the ⌊n/2⌋+1-of-n majority system [Tho79].
func NewMajority(n int) (*Threshold, error) { return systems.NewMajority(n) }

// NewDisseminationThreshold returns the [MR98a] dissemination threshold
// (quorums of ⌈(n+b+1)/2⌉, intersections ≥ b+1) for self-verifying data.
func NewDisseminationThreshold(n, b int) (*Threshold, error) {
	return systems.NewDisseminationThreshold(n, b)
}

// NewAuthenticator returns the simulated signature registry used by
// DisseminationClient.
func NewAuthenticator() *Authenticator { return sim.NewAuthenticator() }

// NewGrid returns the b-masking grid of [MR98a] on a d×d universe.
func NewGrid(d, b int) (*Grid, error) { return systems.NewGrid(d, b) }

// NewNWGrid returns the regular row-plus-column grid (the b = 0 Grid).
func NewNWGrid(d int) (*Grid, error) { return systems.NewNWGrid(d) }

// NewMGrid returns the M-Grid construction of §5.1 on a d×d universe:
// quorums of √(b+1) rows plus √(b+1) columns, optimal load.
func NewMGrid(d, b int) (*MGrid, error) { return systems.NewMGrid(d, b) }

// NewRT returns the recursive threshold RT(k,ℓ) of depth h (§5.2).
func NewRT(k, l, h int) (*RT, error) { return systems.NewRT(k, l, h) }

// NewBoostFPP returns boostFPP(q, b) = FPP(q) ∘ Thresh(3b+1 of 4b+1) (§6);
// q must be a prime power.
func NewBoostFPP(q, b int) (*BoostFPP, error) { return systems.NewBoostFPP(q, b) }

// NewMPath returns the M-Path construction of §7 on a d×d triangulated
// grid: quorums of √(2b+1) disjoint left-right plus √(2b+1) disjoint
// top-bottom paths; optimal in both load and crash probability.
func NewMPath(d, b int) (*MPath, error) { return systems.NewMPath(d, b) }

// NewMPathEdge returns the square-lattice edge variant of M-Path: servers
// on the bonds of a d×d grid, dual top-bottom paths (end of §7).
func NewMPathEdge(d, b int) (*MPathEdge, error) { return systems.NewMPathEdge(d, b) }

// NewProbMasking returns the probabilistic b-masking system of [MRWW98]
// with quorum size s over n servers; see (*ProbMasking).EpsilonMasking.
func NewProbMasking(n, s, b int) (*ProbMasking, error) { return systems.NewProbMasking(n, s, b) }

// NewCrumblingWall returns the crumbling-wall regular system of [PW97b]
// with the given row widths (explicit; small walls only).
func NewCrumblingWall(widths []int, limit int) (*ExplicitSystem, error) {
	return systems.NewCrumblingWall(widths, limit)
}

// NewWheel returns the wheel system of [NW98] over n servers.
func NewWheel(n int) (*ExplicitSystem, error) { return systems.NewWheel(n) }

// CrashPolynomial returns the exact kill counts N_k of the system
// (F_p = Σ_k N_k p^k (1−p)^{n−k}); evaluate with EvalCrashPolynomial.
func CrashPolynomial(sys Enumerable) ([]float64, error) { return measures.CrashPolynomial(sys) }

// EvalCrashPolynomial evaluates a CrashPolynomial at probability p.
func EvalCrashPolynomial(counts []float64, p float64) float64 {
	return measures.EvalCrashPolynomial(counts, p)
}

// NewFPP returns the lines of the projective plane PG(2,q) as an explicit
// regular quorum system (the optimal-load regular system of [NW98]).
func NewFPP(q int) (*ExplicitSystem, error) {
	plane, err := projective.New(q)
	if err != nil {
		return nil, err
	}
	return systems.NewFPP(plane)
}

// Compose returns the lazy composition S∘R of Definition 4.6; parameters
// multiply per Theorem 4.7.
func Compose(outer, inner System) *Composite { return compose.New(outer, inner) }

// ComposeExplicit materializes S∘R for exact analysis of small systems.
func ComposeExplicit(outer, inner Enumerable, limit int) (*ExplicitSystem, error) {
	return compose.Explicit(outer, inner, limit)
}

// Boost applies the §6 boosting technique to any quorum system:
// Boost(S, b) = S ∘ Thresh(3b+1 of 4b+1) is b-masking.
func Boost(regular System, b int) (*Composite, error) { return systems.Boost(regular, b) }

// Resilience returns f = MT(Q) − 1 (Definition 3.4).
func Resilience(p Parameterized) int { return core.Resilience(p) }

// MaskingBound applies Corollary 3.7: b = min{MT−1, (IS−1)/2}.
func MaskingBound(p Parameterized) int { return core.MaskingBoundFromParams(p) }

// IsBMasking checks the Lemma 3.6 conditions for a given b.
func IsBMasking(p Parameterized, b int) bool { return core.IsBMasking(p, b) }

// Load solves the Definition 3.8 linear program exactly for an explicit
// system, returning L(Q) and an optimal access strategy.
func Load(sys Enumerable) (float64, *Strategy, error) { return measures.Load(sys) }

// NewStrategy validates and wraps an access-strategy weight vector
// (non-negative, summing to 1), aligned with an explicit quorum list.
func NewStrategy(weights []float64) (*Strategy, error) { return core.NewStrategy(weights) }

// UniformStrategy returns the strategy giving each of m quorums weight
// 1/m — load-optimal exactly for fair systems (Proposition 3.9).
func UniformStrategy(m int) *Strategy { return core.UniformStrategy(m) }

// AsEnumerable returns a materialized view of sys (itself when already
// Enumerable, its Enumerate(limit) when an Enumerator), or
// ErrNotEnumerable.
func AsEnumerable(sys System, limit int) (Enumerable, error) {
	return core.AsEnumerable(sys, limit)
}

// LoadFair applies Proposition 3.9 (L = c/n for fair systems).
func LoadFair(sys *ExplicitSystem) (float64, error) { return measures.LoadFair(sys) }

// EmpiricalLoad estimates the busiest-server frequency of the system's
// built-in strategy over the given number of sampled accesses.
func EmpiricalLoad(sys Sampler, trials int, rng *rand.Rand) float64 {
	return measures.EmpiricalLoad(sys, trials, rng)
}

// LoadLowerBound is Theorem 4.1: L(Q) ≥ max{(2b+1)/c, c/n}.
func LoadLowerBound(n, b, c int) float64 { return measures.LoadLowerBound(n, b, c) }

// GlobalLoadLowerBound is Corollary 4.2: L(Q) ≥ √((2b+1)/n).
func GlobalLoadLowerBound(n, b int) float64 { return measures.GlobalLoadLowerBound(n, b) }

// CrashProbabilityExact computes F_p (Definition 3.10) by enumerating all
// failure configurations (universe ≤ 24 servers).
func CrashProbabilityExact(sys Enumerable, p float64) (float64, error) {
	return measures.CrashProbabilityExact(sys, p)
}

// CrashProbabilityMC estimates F_p by Monte Carlo for systems of any size.
func CrashProbabilityMC(sys System, p float64, trials int, rng *rand.Rand) (MCResult, error) {
	return measures.CrashProbabilityMC(sys, p, trials, rng)
}

// CrashProbabilityExactVec computes the heterogeneous F_p exactly for a
// per-server crash probability vector (universe ≤ 24).
func CrashProbabilityExactVec(sys Enumerable, p []float64) (float64, error) {
	return measures.CrashProbabilityExactVec(sys, p)
}

// CrashProbabilityExactModel computes F exactly under a full
// FailureModel (per-server vector plus correlated domains); the model's
// independent failure sources are capped at 24.
func CrashProbabilityExactModel(sys Enumerable, m FailureModel) (float64, error) {
	return measures.CrashProbabilityExactModel(sys, m)
}

// CrashProbabilityMCVec estimates the heterogeneous F_p by Monte Carlo
// for a per-server probability vector.
func CrashProbabilityMCVec(sys System, p []float64, trials int, rng *rand.Rand) (MCResult, error) {
	return measures.CrashProbabilityMCVec(sys, p, trials, rng)
}

// CrashProbabilityMCModel estimates F under a full FailureModel by Monte
// Carlo — the estimator for models with too many sources to enumerate.
func CrashProbabilityMCModel(sys System, m FailureModel, trials int, rng *rand.Rand) (MCResult, error) {
	return measures.CrashProbabilityMCModel(sys, m, trials, rng)
}

// UniformFailureModel returns the paper's i.i.d. model: every one of n
// servers crashes independently with probability p.
func UniformFailureModel(n int, p float64) FailureModel { return measures.UniformModel(n, p) }

// ParsePVector parses the CLI form of a per-server crash probability
// vector: a bare float (uniform), n comma-separated floats (positional),
// or ranged "lo-hi:p"/"i:p" entries over a "*:p" default.
func ParsePVector(spec string, n int) ([]float64, error) { return measures.ParsePVector(spec, n) }

// ParseDomains parses the CLI form of correlated failure domains:
// comma-separated members:probability entries with '+'-joined ranges,
// e.g. "0-3:0.05,4-7:0.05,8+12:0.2".
func ParseDomains(spec string, n int) ([]Domain, error) { return measures.ParseDomains(spec, n) }

// CrashLowerBoundMT is Proposition 4.3: F_p ≥ p^MT.
func CrashLowerBoundMT(mt int, p float64) float64 { return measures.CrashLowerBoundMT(mt, p) }

// CrashLowerBoundMasking is Proposition 4.4: F_p ≥ p^(c−2b).
func CrashLowerBoundMasking(c, b int, p float64) float64 {
	return measures.CrashLowerBoundMasking(c, b, p)
}

// CrashLowerBoundB is Proposition 4.5: F_p ≥ p^(b+1) when
// MT ≤ (IS+1)/2 (check with Prop45Applies).
func CrashLowerBoundB(b int, p float64) float64 { return measures.CrashLowerBoundB(b, p) }

// Prop45Applies reports whether Proposition 4.5's precondition holds.
func Prop45Applies(p Parameterized) bool { return measures.Prop45Applies(p) }

// NewCluster builds a simulated server fleet running the [MR98a]
// replicated-variable protocol over the given b-masking system. The fleet
// is safe for any number of concurrent clients; customize it with
// functional options:
//
//	bqs.NewCluster(sys, b, bqs.WithSeed(42), bqs.WithDropRate(0.01))
func NewCluster(system System, b int, opts ...ClusterOption) (*Cluster, error) {
	return sim.NewCluster(system, b, opts...)
}

// WithSeed seeds the cluster's derived randomness (transport loss/latency
// draws and per-client quorum selection). The default seed is 1.
func WithSeed(seed int64) ClusterOption { return sim.WithSeed(seed) }

// WithDropRate makes the network lossy: each response is independently
// lost with probability p, observed by clients exactly like a crash.
func WithDropRate(p float64) ClusterOption { return sim.WithDropRate(p) }

// WithLatency assigns each server a fixed round-trip latency drawn
// uniformly from [base, base+jitter], making deadlines and cancellation
// observable.
func WithLatency(base, jitter time.Duration) ClusterOption { return sim.WithLatency(base, jitter) }

// WithTransport installs a custom message layer built by the factory,
// which receives the cluster's servers (wrap NewInMemoryTransport for
// middleware, or route elsewhere entirely).
func WithTransport(f func(servers []*Server) Transport) ClusterOption {
	return sim.WithTransport(f)
}

// WithStrategy drives quorum selection from the given access strategy
// (Definition 3.8) instead of uniform survivor selection; the weights
// must align with the system's quorum list (the system must be
// Enumerable or Enumerator). Under suspicion the strategy renormalizes
// over surviving quorums, falling back to uniform when all surviving
// weight is zero.
func WithStrategy(st *Strategy) ClusterOption { return sim.WithStrategy(st) }

// WithOptimalStrategy solves the Definition 3.8 load LP at construction
// and installs the optimal access strategy, so the cluster's measured
// load converges to L(Q) itself; Cluster.StrategyLoad reports the LP
// value. The system must be Enumerable or Enumerator.
func WithOptimalStrategy() ClusterOption { return sim.WithOptimalStrategy() }

// WithDeterministic probes quorum members sequentially from the calling
// goroutine, restoring the exactly reproducible single-threaded mode.
func WithDeterministic() ClusterOption { return sim.WithDeterministic() }

// NewFaultSchedule validates fault events (non-negative offsets and
// server indices, known behaviors) and returns them as a timeline sorted
// stably by offset.
func NewFaultSchedule(events []FaultEvent) (*FaultSchedule, error) {
	return sim.NewFaultSchedule(events)
}

// ParseFaultSchedule parses the CLI timeline form
// "100ms:3:crashed,250ms:0-2:byz-fabricate,600ms:3:correct" —
// comma-separated at:servers:behavior entries with inclusive server
// ranges.
func ParseFaultSchedule(spec string) (*FaultSchedule, error) { return sim.ParseFaultSchedule(spec) }

// ParseChurn parses the stochastic churn spec — one or more
// ';'-separated clauses: a base "mtbf=300ms,mttr=100ms[,down=<behavior>]
// [,servers=lo-hi]" followed by optional heterogeneous groups
// ("servers=4-7,mtbf=1s" rate overrides, "domain=0-3" correlated failure
// domains) — into a ChurnConfig.
func ParseChurn(spec string) (ChurnConfig, error) { return sim.ParseChurn(spec) }

// ParseAdversary parses the adversary spec: a strategy name (random,
// targeted, timing) optionally followed by b=<budget>,
// behavior=<ParseBehavior name>, interval=<duration>, seed=<int>.
func ParseAdversary(spec string) (AdversaryConfig, error) { return sim.ParseAdversary(spec) }

// NewAdversary builds an adversarial Byzantine scheduler over an
// n-server fleet: it corrupts up to cfg.B servers through f, re-choosing
// victims live per cfg.Kind. loads may be nil except for the targeted
// kind (pass the Cluster, which is its own LoadSource); run it with
// Adversary.Run alongside the workload.
func NewAdversary(cfg AdversaryConfig, f Flipper, loads LoadSource, n int) (*Adversary, error) {
	return sim.NewAdversary(cfg, f, loads, n)
}

// ParseBehavior maps a behavior name ("correct", "crashed",
// "byz-fabricate", "byz-stale", "byz-equivocate" and common aliases) to
// its Behavior constant.
func ParseBehavior(s string) (Behavior, error) { return sim.ParseBehavior(s) }

// NewFaultController binds a fault schedule to the Flipper (a Cluster, or
// a WireClient for remote deployments) that will apply it; run it with
// FaultController.Run alongside the workload.
func NewFaultController(f Flipper, s *FaultSchedule) *FaultController {
	return sim.NewFaultController(f, s)
}

// NewInMemoryTransport returns the stock lossless zero-latency transport
// over the given servers, for wrapping in WithTransport factories.
func NewInMemoryTransport(servers []*Server, seed int64) Transport {
	return sim.NewInMemoryTransport(servers, seed)
}

// NewServer returns a correct replica, for hosting in a WireServer (the
// Cluster constructor builds its own servers; this is for standalone
// daemons). Without options the replica starts with empty registers;
// with WithStore it loads its registers from the engine's recovered
// state and persists every accepted write before acknowledging it.
func NewServer(id int, opts ...ServerOption) *Server { return sim.NewServer(id, opts...) }

// WithStore backs the server's registers with the given storage engine:
// recovered state is loaded at construction, every accepted write is
// persisted before it is acknowledged, and a Restart fault replays the
// engine's crash-recovery path.
func WithStore(st Store) ServerOption { return sim.WithStore(st) }

// WithStores backs every server of a cluster with a storage engine from
// the factory, called once per server id; return (nil, nil) to leave a
// server memory-only. The cluster owns the engines it builds and closes
// them in Cluster.Close.
func WithStores(factory func(id int) (Store, error)) ClusterOption {
	return sim.WithStores(factory)
}

// NewMemStore returns the volatile storage engine: a concurrency-safe
// keyed map with last-writer-wins merge. Reopen wipes it — a restart
// over a memory engine models a server with amnesia.
func NewMemStore() Store { return store.NewMem() }

// OpenDiskStore opens (or creates) the durable engine rooted at dir: an
// append-only CRC-checksummed WAL with group commit, periodic snapshots
// with log truncation, and recovery that replays snapshot plus WAL tail,
// tolerating a torn or corrupt final record.
func OpenDiskStore(dir string, opts ...DiskOption) (*DiskStore, error) {
	return store.Open(dir, opts...)
}

// WithFsync controls whether the durable engine fsyncs each group
// commit (default true). Disabling it trades crash durability of the
// last few records for throughput.
func WithFsync(on bool) DiskOption { return store.WithFsync(on) }

// WithSnapshotThreshold sets the WAL size that triggers a snapshot and
// log truncation (default store.DefaultSnapshotThreshold).
func WithSnapshotThreshold(n int64) DiskOption { return store.WithSnapshotThreshold(n) }

// WithCommitLinger sets the durable engine's group-commit window — how
// long the flusher collects concurrent writes before each fsync (default
// store.DefaultCommitLinger; 0 flushes immediately).
func WithCommitLinger(d time.Duration) DiskOption { return store.WithCommitLinger(d) }

// NewWireServer returns a TCP daemon hosting the given replicas, keyed by
// global server index. Start it with ListenAndServe or Serve; stop it
// with Shutdown (graceful) or Close.
func NewWireServer(replicas map[int]*Server, opts ...WireServerOption) *WireServer {
	return wire.NewServer(replicas, opts...)
}

// DialWire returns a Transport that routes each probe over TCP to the
// address hosting that server (global index → "host:port"). Connections
// are pooled per address, pipelined (many concurrent operations share one
// socket, matched by request ID), and re-established automatically; an
// unreachable server answers Response{OK: false}, the same suspicion
// signal a crash produces, so quorum re-selection works unchanged. Plug
// it into a cluster with
//
//	tr, err := bqs.DialWire(routes)
//	cluster, err := bqs.NewCluster(sys, b,
//	    bqs.WithTransport(func([]*bqs.Server) bqs.Transport { return tr }))
func DialWire(routes map[int]string, opts ...WireDialOption) (*WireClient, error) {
	return wire.Dial(routes, opts...)
}

// WithWirePoolSize sets how many TCP connections DialWire keeps per
// address (default 1; pipelining usually makes one enough).
func WithWirePoolSize(n int) WireDialOption { return wire.WithPoolSize(n) }

// WithWireDialTimeout bounds each connection attempt (default 2s).
func WithWireDialTimeout(d time.Duration) WireDialOption { return wire.WithDialTimeout(d) }

// WithWireRedialBackoff sets how long an address stays marked down after
// a failed connection attempt (default 100ms).
func WithWireRedialBackoff(d time.Duration) WireDialOption { return wire.WithRedialBackoff(d) }

// WithWireVersion caps the wire protocol version DialWire speaks
// (default WireProtoVersion). Use 1 against a fleet of old daemons: no
// hello, v1 single frames only, keyed operations answering
// Response{OK: false}.
func WithWireVersion(v int) WireDialOption { return wire.WithVersion(v) }

// ParseRoutes parses "0-8=hostA:7000,9-24=hostB:7000" into the route
// table DialWire consumes.
func ParseRoutes(spec string) (map[int]string, error) { return wire.ParseRoutes(spec) }

// ParseIDRange parses "0-24" (or "7") into the inclusive list of global
// server indices it names.
func ParseIDRange(spec string) ([]int, error) { return wire.ParseIDRange(spec) }

// CheckRouteCoverage verifies the route table addresses every server of
// an n-element universe.
func CheckRouteCoverage(routes map[int]string, n int) error { return wire.CheckCoverage(routes, n) }

// WithWireEpochs makes the dialed client epoch-aware: every pipelined
// request is prefaced (once per connection per epoch) with an announce
// frame pinning the epoch its quorum was drawn from, shards reject
// mismatches with a retriable wrongepoch answer, and the client gains
// InstallEpoch/FetchConfig plus the ReconfigInstaller seam
// Cluster.Reconfigure drives. onStale, if non-nil, fires with the
// shard's newer record whenever a request is bounced; it must not
// block (it runs on the connection's read loop).
func WithWireEpochs(onStale func(ReconfigRecord)) WireDialOption { return wire.WithEpochs(onStale) }

// ParseReconfigTarget parses a reconfiguration target spec — "kind:N"
// (e.g. "mgrid:36", "threshold:25") or "compose:OUTERxINNER" (e.g.
// "compose:6x6") — into a ReconfigRecord with masking bound b. The
// record's epoch is left zero, meaning "the cluster's next epoch"; the
// target construction is built once to validate the parameters.
func ParseReconfigTarget(spec string, b int) (ReconfigRecord, error) {
	return reconfig.ParseTarget(spec, b)
}

// FabricatedValue is the marker value Byzantine fabricators return in the
// simulation; reads must never surface it while faults stay within b.
const FabricatedValue = sim.FabricatedValue

// Observability: the telemetry plane. One MetricsRegistry threads through
// every layer — cluster (per-op spans, per-server load gauges, the L(Q)
// and F_p(Q) companions), wire client and server (frames, bytes, batch
// sizes, dials, version mix) and disk stores (WAL appends, fsync batches,
// snapshots, recovery time) — and ServeMetrics exposes it over HTTP as
// Prometheus text, expvar-style JSON and net/http/pprof. Everything is
// optional: without a registry every instrument call is a nil-receiver
// no-op and the hot paths stay allocation-free.
type (
	// MetricsRegistry is the process-wide instrument registry; see
	// NewMetricsRegistry.
	MetricsRegistry = obs.Registry
	// MetricsServer is the HTTP endpoint ServeMetrics starts.
	MetricsServer = obs.Server
	// MetricsHistogram is a fixed-bucket latency/size histogram, exposed
	// so harness counters can hand registry-backed quantiles around.
	MetricsHistogram = obs.Histogram
	// WireServerOption configures NewWireServer (metrics).
	WireServerOption = wire.ServerOption
)

// NewMetricsRegistry returns an empty registry. Pass it to WithMetrics
// (cluster), WithStoreMetrics (durable stores), WithWireMetrics (wire
// client), WithWireServerMetrics (wire daemon) and ServeMetrics; the same
// registry may back any number of layers at once.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// WithMetrics instruments a cluster and its clients: per-operation spans
// (quorum pick, per-phase probe fan-out, retries), per-server live load
// gauges next to the static L(Q) companions, and the epoch/crash
// counters behind the live F_p(Q) gauge.
func WithMetrics(reg *MetricsRegistry) ClusterOption { return sim.WithMetrics(reg) }

// WithStoreMetrics instruments a durable store: WAL appends and bytes,
// fsync batches (count and records-per-fsync histogram), snapshots and
// recovery time.
func WithStoreMetrics(reg *MetricsRegistry) DiskOption { return store.WithMetrics(reg) }

// WithWireMetrics instruments a wire client: frames and bytes by
// direction, ops per batch frame, dial successes and failures, and the
// negotiated-version mix.
func WithWireMetrics(reg *MetricsRegistry) WireDialOption { return wire.WithMetrics(reg) }

// WithWireServerMetrics is WithWireMetrics for the daemon side, plus a
// live open-connections gauge.
func WithWireServerMetrics(reg *MetricsRegistry) WireServerOption {
	return wire.WithServerMetrics(reg)
}

// ServeMetrics binds addr (e.g. "127.0.0.1:9100") and serves the
// registry: /metrics (Prometheus text), /vars (JSON), /events (recent
// annotated events), /debug/vars (expvar) and /debug/pprof/*. Returns
// the running server; its Addr method reports the bound address (useful
// with port 0) and Close stops it.
func ServeMetrics(addr string, reg *MetricsRegistry) (*MetricsServer, error) {
	return obs.Serve(addr, reg)
}
